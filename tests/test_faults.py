"""Chaos/recovery tests for the fault-tolerant data plane.

Covers the resilience triad (retries with backoff, per-shard circuit
breakers, storage-fallback degraded reads), recovery handling (cold
revival re-probes and re-closes the breaker), churn-safe elastic
accounting (a dead or replaced shard must not fabricate an ``I_c`` spike
and a spurious EXPAND), and the simulator's timing-plane fault model.
"""

from __future__ import annotations

import pytest

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector
from repro.cluster.retry import (
    BreakerConfig,
    BreakerState,
    ClusterGuard,
    RetryPolicy,
)
from repro.cluster.storage import PersistentStore
from repro.core.elastic import ElasticCoTClient
from repro.engine import (
    PolicySpec,
    Scale,
    ScenarioSpec,
    SimRunner,
    TopologySpec,
    WorkloadSpec,
)
from repro.errors import (
    ClusterError,
    ShardDownError,
    ShardFlakyError,
    ShardTimeoutError,
    ShardUnavailableError,
)
from repro.policies.lru import LRUCache
from repro.workloads.base import format_key
from repro.workloads.mixer import OperationMixer
from repro.workloads.uniform import UniformGenerator
from repro.workloads.zipfian import ZipfianGenerator


def faulty_cluster(n=4, seed=0, storage=None):
    faults = FaultInjector(seed=seed)
    cluster = CacheCluster(
        num_servers=n, virtual_nodes=256, value_size=1,
        storage=storage, faults=faults,
    )
    return cluster, faults


def tight_guard(cluster, threshold=3, cooldown=8.0):
    return ClusterGuard(
        cluster.server_ids,
        retry=RetryPolicy(max_attempts=2, base_backoff=1e-4),
        breaker=BreakerConfig(failure_threshold=threshold, cooldown=cooldown),
    )


class TestFaultInjector:
    def test_kill_and_revive(self):
        injector = FaultInjector()
        injector.kill("s0")
        assert injector.is_down("s0")
        assert injector.down_servers() == frozenset({"s0"})
        with pytest.raises(ShardDownError):
            injector.check("s0")
        injector.revive("s0")
        assert not injector.is_down("s0")
        injector.check("s0")  # healthy again: no raise
        assert injector.stats.kills == 1
        assert injector.stats.revives == 1
        assert injector.stats.injected_down == 1

    def test_kill_is_idempotent(self):
        injector = FaultInjector()
        injector.kill("s0")
        injector.kill("s0")
        assert injector.stats.kills == 1

    def test_extreme_slowdown_is_a_timeout_on_the_live_plane(self):
        injector = FaultInjector(timeout_factor=8.0)
        injector.set_slowdown("s0", 4.0)
        injector.check("s0")  # below the deadline: merely slow
        injector.set_slowdown("s0", 8.0)
        with pytest.raises(ShardTimeoutError):
            injector.check("s0")
        assert injector.stats.injected_timeouts == 1

    def test_flaky_is_seeded_and_probabilistic(self):
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(seed=7)
            injector.set_flaky("s0", 0.3)
            outcomes.append(
                [injector.probe("s0") is not None for _ in range(200)]
            )
        assert outcomes[0] == outcomes[1]  # reproducible
        failures = sum(outcomes[0])
        assert 0 < failures < 200
        injector = FaultInjector(seed=7)
        injector.set_flaky("s0", 1.0)
        assert isinstance(injector.probe("s0"), ShardFlakyError)

    def test_clear_restores_health(self):
        injector = FaultInjector()
        injector.kill("s0")
        injector.set_flaky("s0", 1.0)
        injector.clear("s0")
        assert injector.profile("s0").healthy


class TestRetry:
    def test_success_needs_no_retry(self):
        guard = ClusterGuard(["s0"])
        assert guard.call("s0", lambda: 42) == 42
        assert guard.stats.retries == 0
        assert guard.stats.attempts == 1

    def test_transient_failure_is_retried(self):
        guard = ClusterGuard(["s0"], retry=RetryPolicy(max_attempts=3))
        calls = [0]

        def flaky_once():
            calls[0] += 1
            if calls[0] == 1:
                raise ShardFlakyError("flake")
            return "ok"

        assert guard.call("s0", flaky_once) == "ok"
        assert guard.stats.retries == 1
        assert guard.stats.failures == 0
        assert guard.stats.backoff_total > 0.0

    def test_exhausted_retries_raise_unavailable(self):
        guard = ClusterGuard(
            ["s0"],
            retry=RetryPolicy(max_attempts=3),
            breaker=BreakerConfig(failure_threshold=100),
        )

        def always_down():
            raise ShardDownError("down")

        with pytest.raises(ShardUnavailableError):
            guard.call("s0", always_down)
        assert guard.stats.attempts == 3
        assert guard.stats.failures == 1

    def test_backoff_grows_and_jitters_within_bounds(self):
        import random

        policy = RetryPolicy(base_backoff=1e-3, multiplier=2.0, jitter=0.5)
        rng = random.Random(3)
        delays = [policy.backoff(attempt, rng) for attempt in range(5)]
        for attempt, delay in enumerate(delays):
            nominal = 1e-3 * 2.0**attempt
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_non_shard_errors_propagate_untouched(self):
        guard = ClusterGuard(["s0"])

        def broken():
            raise ValueError("bug")

        with pytest.raises(ValueError):
            guard.call("s0", broken)


class TestCircuitBreaker:
    def always_down(self):
        raise ShardDownError("down")

    def test_opens_after_threshold_and_rejects_instantly(self):
        guard = tight_guard_for(["s0"], threshold=4, cooldown=1000.0)
        for _ in range(2):  # 2 ops x 2 attempts = 4 consecutive failures
            with pytest.raises(ShardUnavailableError):
                guard.call("s0", self.always_down)
        assert guard.state("s0") is BreakerState.OPEN
        attempts_before = guard.stats.attempts
        with pytest.raises(ShardUnavailableError):
            guard.call("s0", self.always_down)
        # Rejected without a single doomed request attempt.
        assert guard.stats.attempts == attempts_before
        assert guard.stats.open_rejections == 1

    def test_half_opens_after_cooldown_then_closes_on_success(self):
        guard = tight_guard_for(["s0", "s1"], threshold=2, cooldown=4.0)
        with pytest.raises(ShardUnavailableError):
            guard.call("s0", self.always_down)
        assert guard.state("s0") is BreakerState.OPEN
        for _ in range(4):  # healthy traffic elsewhere advances the clock
            guard.call("s1", lambda: "ok")
        assert guard.state("s0") is BreakerState.HALF_OPEN
        assert guard.call("s0", lambda: "recovered") == "recovered"
        assert guard.state("s0") is BreakerState.CLOSED
        assert guard.breaker("s0").closes == 1
        assert guard.breaker("s0").half_opens == 1

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        guard = tight_guard_for(["s0", "s1"], threshold=2, cooldown=4.0)
        with pytest.raises(ShardUnavailableError):
            guard.call("s0", self.always_down)
        for _ in range(4):
            guard.call("s1", lambda: "ok")
        with pytest.raises(ShardUnavailableError):  # the probe fails
            guard.call("s0", self.always_down)
        assert guard.state("s0") is BreakerState.OPEN
        with pytest.raises(ShardUnavailableError):  # still cooling down
            guard.call("s0", lambda: "ok")
        assert guard.stats.open_rejections == 1

    def test_unavailable_servers_tracks_non_closed_breakers(self):
        guard = tight_guard_for(["s0", "s1"], threshold=2, cooldown=1000.0)
        assert guard.unavailable_servers() == frozenset()
        with pytest.raises(ShardUnavailableError):
            guard.call("s0", self.always_down)
        assert guard.unavailable_servers() == frozenset({"s0"})


def tight_guard_for(servers, threshold, cooldown):
    return ClusterGuard(
        servers,
        retry=RetryPolicy(max_attempts=2, base_backoff=1e-4),
        breaker=BreakerConfig(failure_threshold=threshold, cooldown=cooldown),
    )


class TestDegradedReads:
    def test_reads_stay_correct_while_shard_is_down(self):
        storage = PersistentStore(value_factory=lambda k: ("auth", k))
        cluster, faults = faulty_cluster(storage=storage)
        client = FrontEndClient(
            cluster, LRUCache(4), guard=tight_guard(cluster)
        )
        keys = [format_key(i) for i in range(200)]
        victim = "cache-1"
        cluster.kill_server(victim)
        for key in keys:
            assert client.get(key) == ("auth", key)
        assert client.monitor.degraded_reads() > 0
        assert client.monitor.degraded_by_server()[victim] > 0

    def test_get_many_degrades_per_dead_shard_only(self):
        storage = PersistentStore(value_factory=lambda k: ("auth", k))
        cluster, faults = faulty_cluster(storage=storage)
        client = FrontEndClient(
            cluster, LRUCache(4), guard=tight_guard(cluster)
        )
        cluster.kill_server("cache-2")
        keys = [format_key(i) for i in range(150)]
        values = client.get_many(keys)
        assert values == {key: ("auth", key) for key in keys}
        degraded = client.monitor.degraded_by_server()
        assert degraded.get("cache-2", 0) > 0
        assert all(sid == "cache-2" for sid in degraded)

    def test_fault_errors_counted_on_the_shard(self):
        cluster, faults = faulty_cluster()
        client = FrontEndClient(
            cluster, LRUCache(4), guard=tight_guard(cluster)
        )
        cluster.kill_server("cache-0")
        for i in range(100):
            client.get(format_key(i))
        assert cluster.server("cache-0").stats.fault_errors > 0
        assert faults.stats.injected_down > 0

    def test_kill_without_injector_is_an_error(self):
        cluster = CacheCluster(num_servers=2, virtual_nodes=64, value_size=1)
        with pytest.raises(ClusterError):
            cluster.kill_server("cache-0")


class TestRecovery:
    def test_cold_revival_closes_breaker_and_wipes_staleness(self):
        cluster, faults = faulty_cluster()
        guard = tight_guard(cluster, threshold=2, cooldown=8.0)
        client = FrontEndClient(cluster, LRUCache(64), guard=guard)
        # Find a key owned by the victim and cache it at the shard.
        victim = "cache-1"
        key = next(
            format_key(i)
            for i in range(1000)
            if cluster.ring.server_for(format_key(i)) == victim
        )
        client.get(key)
        cluster.kill_server(victim)
        # Trip the breaker with reads, then write while the shard is dead:
        # the shard-side invalidation is lost (and counted).
        for i in range(50):
            client.get(format_key(i))
        assert guard.state(victim) is not BreakerState.CLOSED
        client.policy.invalidate(key)
        client.set(key, "fresh")
        assert guard.stats.lost_invalidations >= 1
        # Cold revival: the shard restarts empty, so the stale copy that
        # missed its invalidation cannot be served — and the breaker is
        # reset at the incarnation boundary (the failure streak belonged
        # to the dead incarnation), so the revived shard is reachable
        # immediately instead of after a cooldown's worth of traffic.
        cluster.revive_server(victim)
        assert guard.state(victim) is BreakerState.CLOSED
        assert client.get(key) == "fresh"

    def test_cold_revival_zeroes_load_window_with_router_attached(self):
        """LoadMonitor accounting across kill/revive: a cold-revived shard
        restarts with an empty cache, so its pre-outage epoch-window load
        must not make it look busy to two-choices routing — the window is
        zeroed on revival while lifetime counters stay intact."""
        from repro.cluster.replication import HotKeyRouter, ReplicationConfig

        cluster, faults = faulty_cluster(n=4)
        client = FrontEndClient(
            cluster, LRUCache(8), guard=tight_guard(cluster)
        )
        router = HotKeyRouter(cluster, ReplicationConfig(degree=2))
        client.attach_router(router, seed=3)
        for i in range(400):
            client.get(format_key(i))
        victim = max(
            client.monitor.epoch_loads(), key=client.monitor.epoch_load
        )
        window_before = client.monitor.epoch_load(victim)
        lifetime_before = client.monitor.total_loads()[victim]
        assert window_before > 0
        cluster.kill_server(victim)
        cluster.revive_server(victim, cold=True)
        assert client.monitor.epoch_load(victim) == 0
        assert client.monitor.total_loads()[victim] == lifetime_before
        # other shards' windows are untouched
        assert any(
            load > 0 for load in client.monitor.epoch_loads().values()
        )

    def test_breaker_reset_on_cold_revival_prevents_cross_client_staleness(self):
        """Regression (found by the stateful fuzzer): breakers are
        per front end, so "my breaker is open" must imply "the shard is
        really down" — otherwise a writer keeps skipping shard-side
        invalidations against a shard that *other* front ends (closed
        breakers) are happily filling and reading. A breaker left OPEN
        past a cold revival broke exactly that: writer trips its breaker
        while the shard is dead, shard revives cold, a reader re-fills
        it, the writer's delete is skipped by the stale-open breaker,
        and the reader serves the value the delete was meant to kill."""
        storage = PersistentStore()
        cluster, faults = faulty_cluster(storage=storage)
        writer = FrontEndClient(
            cluster,
            LRUCache(8),
            client_id="writer",
            guard=tight_guard(cluster, threshold=1, cooldown=1e9),
        )
        reader = FrontEndClient(cluster, LRUCache(8), client_id="reader")
        victim = "cache-1"
        key = next(
            format_key(i)
            for i in range(1000)
            if cluster.ring.server_for(format_key(i)) == victim
        )
        cluster.kill_server(victim)
        writer.set(key, "doomed")  # invalidation fails; breaker trips
        assert writer.guard.state(victim) is not BreakerState.CLOSED
        cluster.revive_server(victim, cold=True)
        # The revival reset the writer's breaker for the new incarnation.
        assert writer.guard.state(victim) is BreakerState.CLOSED
        assert reader.get(key) == "doomed"  # re-fills the revived shard
        writer.delete(key)
        # Force the reader through the caching layer: its local copy was
        # dropped here to model any ordinary eviction.
        reader.policy.invalidate(key)
        assert reader.get(key) == storage.get(key)

    def test_removed_shard_leaves_no_orphaned_client_state(self):
        """Regression: scale-in left the departed shard's fault profile,
        breaker and load-window entries behind forever. All of it is
        torn down via the cluster's removal listeners."""
        cluster, faults = faulty_cluster()
        client = FrontEndClient(
            cluster, LRUCache(16), guard=tight_guard(cluster)
        )
        generator = UniformGenerator(2_000, seed=9)
        for key in generator.keys(400):
            client.get(format_key(key))
        victim = "cache-2"
        cluster.kill_server(victim)
        for key in generator.keys(200):
            client.get(format_key(key))  # accumulate failures on victim
        cluster.remove_server(victim)
        assert victim not in faults.tracked_servers()
        assert victim not in faults.down_servers()
        assert victim not in client.guard.tracked_servers()
        assert victim not in client.monitor.total_loads()
        assert victim not in client.monitor.epoch_loads()

    def test_outage_is_transparent_to_callers(self):
        """Kill → serve → revive, not one exception escapes the client."""
        cluster, faults = faulty_cluster()
        client = FrontEndClient(
            cluster, LRUCache(16), guard=tight_guard(cluster)
        )
        generator = ZipfianGenerator(2_000, theta=1.1, seed=5)
        for phase, action in [
            (None, None),
            ("cache-0", cluster.kill_server),
            ("cache-0", cluster.revive_server),
        ]:
            if action is not None:
                action(phase)
            for key in generator.keys(500):
                client.get(format_key(key))
        assert client.monitor.degraded_reads() > 0


class TestChurnSafeElastic:
    def new_elastic(self, cluster, base_epoch=400, **kwargs):
        return ElasticCoTClient(
            cluster,
            target_imbalance=1.1,
            base_epoch=base_epoch,
            guard=tight_guard(cluster, threshold=3, cooldown=64.0),
            **kwargs,
        )

    def test_dead_shard_excluded_from_epoch_imbalance(self):
        cluster, faults = faulty_cluster()
        client = self.new_elastic(cluster)
        generator = ZipfianGenerator(5_000, theta=1.1, seed=11)
        for key in generator.keys(300):
            client.get(format_key(key))
        cluster.kill_server("cache-1")
        for key in generator.keys(2_000):
            client.get(format_key(key))
        # The breaker is open, so the dead shard's partial count is out.
        assert "cache-1" not in client._churn_safe_epoch_loads()
        for record in client.history:
            assert record.snapshot.imbalance < 50.0  # no phantom max/1 spike

    def test_removed_shard_zero_load_entry_is_ignored(self):
        """A removed shard's monitor entries are purged outright (via the
        cluster's removal listener), so a stale zero-load entry can never
        floor min-load at 1 — and the controller never sees the id."""
        cluster, faults = faulty_cluster()
        client = self.new_elastic(cluster, base_epoch=400)
        generator = UniformGenerator(5_000, seed=12)
        for key in generator.keys(1_200):
            client.get(format_key(key))
        cluster.remove_server("cache-1")
        replacement = cluster.add_server().server_id
        assert replacement != "cache-1"
        for key in generator.keys(4_000):
            client.get(format_key(key))
        # The removal listener purged every monitor entry for the id...
        assert "cache-1" not in client.monitor.total_loads()
        # ...so the controller cannot see it either.
        assert "cache-1" not in client._churn_safe_epoch_loads()
        # Uniform workload: no epoch may show the phantom max/1 spike, and
        # no expansion may ride on an inflated imbalance reading.
        for record in client.history:
            assert record.snapshot.imbalance < 50.0
            if record.decision == "expand":
                assert record.snapshot.imbalance < 5.0
        assert replacement in client.monitor.total_loads()

    def test_scale_in_cannot_resurrect_a_rehomed_stale_copy(self):
        """Regression (end to end): read key → scale OUT moves its
        ownership to the new shard → write deletes only on the new owner
        → scale the new owner back IN → ownership regresses to the old
        shard, whose pre-write copy used to serve. The removal-time
        purge drops re-homed copies from survivors, so the read below
        must see the write."""
        storage = PersistentStore()
        cluster, _ = faulty_cluster(n=3, storage=storage)
        client = FrontEndClient(cluster, LRUCache(64))
        keys = [format_key(i) for i in range(300)]
        owners_before = {k: cluster.ring.server_for(k) for k in keys}
        for k in keys:
            client.get(k)  # fills the current owners' shard caches
        added = cluster.add_server().server_id
        moved = [
            k
            for k in keys
            if cluster.ring.server_for(k) == added
            and owners_before[k] != added
        ]
        assert moved, "no key re-homed to the new shard; enlarge the key set"
        key = moved[0]
        client.set(key, "fresh")  # invalidates the *new* owner only
        cluster.remove_server(added)  # ownership regresses
        assert cluster.ring.server_for(key) == owners_before[key]
        client.policy.invalidate(key)  # force the read through the layer
        assert client.get(key) == "fresh"

    def test_remove_then_add_within_one_epoch_cannot_double_count(self):
        """Regression: the monitor purges a removed shard's counts and
        treats any later same-id traffic as a fresh mid-epoch joiner, so
        a remove→add inside one epoch can neither splice two
        incarnations' counts nor leak the joiner into the controller's
        load view before its first full epoch."""
        cluster, faults = faulty_cluster()
        client = self.new_elastic(cluster, base_epoch=10_000)
        generator = UniformGenerator(5_000, seed=13)
        for key in generator.keys(1_500):
            client.get(format_key(key))
        # Removing the *highest* id is the aliasing-prone case: naming
        # the next shard by member count re-minted exactly this id.
        cluster.remove_server("cache-3")
        replacement = cluster.add_server().server_id
        for key in generator.keys(1_500):
            client.get(format_key(key))
        # Same epoch: the replacement is tracked, flagged fresh, and
        # invisible to the controller.
        assert replacement in client.monitor.epoch_new_servers()
        safe = client._churn_safe_epoch_loads()
        assert replacement not in safe
        assert "cache-3" not in safe
        assert all(count <= 1_500 + 1_500 for count in safe.values())
        client.close_epoch()
        for key in generator.keys(1_500):
            client.get(format_key(key))
        # Next epoch: the replacement graduates into the load view.
        assert replacement in client._churn_safe_epoch_loads()

    def test_healthy_cluster_expansion_identical_with_and_without_injector(self):
        """Fig. 7's expansion must be byte-identical on a healthy cluster
        whether or not the fault plumbing is attached."""

        def run(with_injector: bool):
            if with_injector:
                cluster, _ = faulty_cluster(n=4)
            else:
                cluster = CacheCluster(
                    num_servers=4, virtual_nodes=256, value_size=1
                )
            client = ElasticCoTClient(
                cluster, target_imbalance=1.1, base_epoch=500
            )
            generator = ZipfianGenerator(5_000, theta=1.2, seed=21)
            for key in generator.keys(15_000):
                client.get(format_key(key))
            return (
                client.converged_sizes(),
                [record.as_row() for record in client.history],
            )

        assert run(False) == run(True)

    def test_expansion_still_happens_under_skew(self):
        cluster, faults = faulty_cluster()
        client = self.new_elastic(cluster, base_epoch=300)
        generator = ZipfianGenerator(5_000, theta=1.3, seed=22)
        for key in generator.keys(12_000):
            client.get(format_key(key))
        assert client.cot.capacity > 2  # the controller did expand
        assert any(r.decision == "expand" for r in client.history)


class TestSimFaults:
    def run_sim(self, faults=None, seed=31):
        spec = ScenarioSpec(
            scale=Scale.tiny(),
            workload=WorkloadSpec(
                mixer_factory=lambda cid: OperationMixer(
                    ZipfianGenerator(2_000, theta=1.1, seed=seed + cid),
                    read_fraction=0.9,
                    seed=100 + cid,
                )
            ),
            policy=PolicySpec(factory=lambda cid: LRUCache(64)),
            topology=TopologySpec(num_servers=4, num_clients=2, faults=faults),
            requests_per_client=1_500,
        )
        return SimRunner().run(spec).telemetry

    def test_dead_shard_degrades_reads_and_run_completes(self):
        faults = FaultInjector(seed=1)
        faults.kill("cache-0")
        telemetry = self.run_sim(faults=faults)
        assert telemetry.total_requests == 3_000
        assert telemetry.degraded_reads > 0
        assert telemetry.fallback_latency > 0.0
        assert telemetry.failed_invalidations > 0

    def test_fallbacks_cost_latency(self):
        healthy = self.run_sim(faults=None)
        faults = FaultInjector(seed=1)
        faults.kill("cache-0")
        degraded = self.run_sim(faults=faults)
        assert degraded.mean_latency > healthy.mean_latency

    def test_slowdown_inflates_runtime(self):
        healthy = self.run_sim(faults=FaultInjector(seed=1))
        faults = FaultInjector(seed=1)
        faults.set_slowdown("cache-1", 4.0)
        slowed = self.run_sim(faults=faults)
        assert slowed.runtime > healthy.runtime
        assert slowed.degraded_reads == 0  # slow, not failed


class TestChaosExperiment:
    def test_smoke_run_meets_acceptance_criteria(self):
        from repro.experiments import extension_chaos
        from repro.experiments.common import Scale

        scale = Scale("test", key_space=5_000, accesses=24_000,
                      num_clients=1, num_servers=4)
        result = extension_chaos.run(scale, num_servers=4)
        assert result.extras["incorrect_reads"] == 0
        assert result.extras["degraded_reads"] > 0
        assert result.extras["spurious_expands"] == 0
        assert result.extras["phantom_epochs"] == 0
        assert result.extras["churn_max_imbalance"] < 5.0
