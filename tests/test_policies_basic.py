"""Tests for LRU, LFU, the perfect-cache oracle, and the null cache."""

from __future__ import annotations

import pytest

from repro.policies.base import MISSING
from repro.policies.lfu import LFUCache
from repro.policies.lru import LRUCache
from repro.policies.nullcache import NullCache
from repro.policies.perfect import PerfectCache


def warm(policy, key, value=None):
    policy.lookup(key)
    policy.admit(key, value if value is not None else key)


class TestLRU:
    def test_evicts_least_recently_used(self):
        lru = LRUCache(2)
        warm(lru, "a")
        warm(lru, "b")
        lru.lookup("a")          # refresh a
        warm(lru, "c")           # evicts b
        assert "a" in lru and "c" in lru and "b" not in lru

    def test_paper_pathology_cycling(self):
        """The paper's (A,B,C,D,A,B,C,E,...) sequence always misses LRU(3)."""
        lru = LRUCache(3)
        sequence = ["A", "B", "C", "D"] * 5
        for key in sequence:
            if lru.lookup(key) is MISSING:
                lru.admit(key, key)
        assert lru.stats.hits == 0

    def test_admit_refreshes_existing(self):
        lru = LRUCache(2)
        warm(lru, "a", 1)
        warm(lru, "b", 2)
        lru.admit("a", 99)      # refresh value + recency
        warm(lru, "c", 3)       # evicts b, not a
        assert lru.lookup("a") == 99
        assert "b" not in lru

    def test_invalidate(self):
        lru = LRUCache(2)
        warm(lru, "a")
        lru.invalidate("a")
        assert "a" not in lru
        assert lru.stats.invalidations == 1
        lru.invalidate("ghost")
        assert lru.stats.invalidations == 1

    def test_resize_shrink_evicts_lru_first(self):
        lru = LRUCache(4)
        for key in "abcd":
            warm(lru, key)
        lru.resize(2)
        assert set(lru.cached_keys()) == {"c", "d"}


class TestLFU:
    def test_evicts_least_frequent(self):
        lfu = LFUCache(2)
        warm(lfu, "a")
        lfu.lookup("a")
        lfu.lookup("a")
        warm(lfu, "b")
        warm(lfu, "c")           # evicts b (freq 1 < a's 3)
        assert "a" in lfu and "c" in lfu and "b" not in lfu

    def test_paper_pathology_stale_frequency(self):
        """LFU keeps old-hot keys: A,A,B,B then C,D,E cycling misses."""
        lfu = LFUCache(3)
        for key in ["A", "A", "B", "B"]:
            if lfu.lookup(key) is MISSING:
                lfu.admit(key, key)
        for key in ["C", "D", "E"] * 4:
            if lfu.lookup(key) is MISSING:
                lfu.admit(key, key)
        # A and B survive with frequency 2; C/D/E churn the last slot.
        assert "A" in lfu and "B" in lfu

    def test_frequency_tracking(self):
        lfu = LFUCache(2)
        warm(lfu, "a")
        lfu.lookup("a")
        assert lfu.frequency_of("a") == 2.0

    def test_invalidate_removes_from_heap(self):
        lfu = LFUCache(2)
        warm(lfu, "a")
        lfu.invalidate("a")
        assert "a" not in lfu
        warm(lfu, "a")           # re-admittable
        assert "a" in lfu

    def test_resize_evicts_least_frequent(self):
        lfu = LFUCache(3)
        warm(lfu, "a")
        lfu.lookup("a")
        warm(lfu, "b")
        warm(lfu, "c")
        lfu.resize(1)
        assert set(lfu.cached_keys()) == {"a"}


class TestPerfect:
    def test_only_hot_keys_cached(self):
        oracle = PerfectCache(2, ["h1", "h2"])
        warm(oracle, "h1")
        warm(oracle, "cold")
        assert "h1" in oracle
        assert "cold" not in oracle

    def test_hot_set_truncated_to_capacity(self):
        oracle = PerfectCache(1, ["a", "b", "c"])
        assert oracle.hot_set == frozenset({"a"})

    def test_for_zipfian(self):
        oracle = PerfectCache.for_zipfian(3, key_space=100)
        assert oracle.hot_set == frozenset({0, 1, 2})

    def test_hit_rate_tracks_head_mass(self):
        import random

        rng = random.Random(3)
        population = list(range(50))
        weights = [1.0 / (i + 1) ** 2 for i in population]
        oracle = PerfectCache(5, population[:5])
        for _ in range(5000):
            key = rng.choices(population, weights)[0]
            if oracle.lookup(key) is MISSING:
                oracle.admit(key, key)
        head = sum(weights[:5]) / sum(weights)
        assert oracle.stats.hit_rate == pytest.approx(head, abs=0.05)

    def test_invalidate_then_readmit(self):
        oracle = PerfectCache(1, ["h"])
        warm(oracle, "h")
        oracle.invalidate("h")
        assert "h" not in oracle
        warm(oracle, "h")
        assert "h" in oracle


class TestNull:
    def test_never_caches(self):
        null = NullCache()
        warm(null, "a")
        assert len(null) == 0
        assert null.lookup("a") is MISSING
        assert null.stats.hit_rate == 0.0

    def test_capacity_pinned_to_zero(self):
        assert NullCache(100).capacity == 0
        with pytest.raises(ValueError):
            NullCache().resize(4)

    def test_invalidate_noop(self):
        null = NullCache()
        null.invalidate("a")
        assert null.stats.invalidations == 0
