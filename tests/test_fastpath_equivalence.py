"""Decision-equivalence: optimized fast path vs. a from-scratch reference.

The PR's hard constraint is that every optimization — incremental hotness
deltas, the fused ``get_or_admit``/``run_stream`` access path, root-replace
tracker admission, inlined heap sifts — changes *how fast* decisions are
made, never *which* decisions are made. This module proves it against
:class:`ReferenceCoT`, an independent reimplementation of Algorithms 1 + 2
that shares no code with the optimized data plane:

* plain dicts instead of indexed heaps;
* hotness recomputed from the raw counters (Equation 1) on every use
  instead of carried incrementally;
* victims found by linear ``min`` scans with an explicit
  ``(hotness, insertion-seq)`` tie-break — the same total order the
  ``IndexedMinHeap`` root realizes.

Under the default unit-weight model every hotness value is an
integer-valued float, so recomputed and incrementally-accumulated hotness
are *exactly* equal and the comparison demands identical decision
sequences, not just similar hit rates. Each trace checks, per access, the
full decision tuple (hit / miss / admitted / demoted-victim), and at the
end the exact cached set, tracked set, and per-key hotness.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CoTCache
from repro.engine import (
    PolicySpec,
    PolicyStreamRunner,
    Scale,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.workloads.mixer import OperationMixer
from repro.workloads.request import OpType
from repro.workloads.zipfian import ZipfianGenerator

KEY_SPACE = 4_096
ACCESSES = 100_000
CAPACITY = 128
TRACKER = 512


class ReferenceCoT:
    """Algorithms 1 + 2 in the most literal form (unit weights only).

    State is four dicts and a value set; the only ordering structure is
    an insertion-sequence number per heap, because the optimized
    ``IndexedMinHeap`` breaks hotness ties by push order and a faithful
    reference must pick the same victims. Sequence numbers advance exactly
    when the optimized tracker pushes (or root-replaces) into the
    corresponding heap: tracker admission and demotion re-push into the
    rest heap; promotion pushes into the cache heap; in-place hotness
    updates keep the existing number.
    """

    def __init__(self, capacity: int, tracker_capacity: int) -> None:
        self.capacity = capacity
        self.tracker_capacity = tracker_capacity
        self.reads: dict[int, float] = {}
        self.updates: dict[int, float] = {}
        self.cached: dict[int, int] = {}  # key -> cache-heap insertion seq
        self.rest: dict[int, int] = {}  # key -> rest-heap insertion seq
        self.values: set = set()
        self._cache_seq = 0
        self._rest_seq = 0

    # ------------------------------------------------------------ internals

    def _hot(self, key) -> float:
        """Equation 1, recomputed from the counters (unit weights)."""
        return self.reads[key] - self.updates[key]

    def _rest_push(self, key) -> None:
        self.rest[key] = self._rest_seq
        self._rest_seq += 1

    def _cache_push(self, key) -> None:
        self.cached[key] = self._cache_seq
        self._cache_seq += 1

    def _rest_victim(self):
        """Space-saving victim: coldest rest key, earliest-pushed on ties."""
        return min(self.rest, key=lambda k: (self._hot(k), self.rest[k]))

    def _cache_victim(self):
        """Coldest cached key, earliest-pushed on ties (demotion target)."""
        return min(self.cached, key=lambda k: (self._hot(k), self.cached[k]))

    def _admit_tracker(self, key) -> None:
        """Algorithm 1 lines 2-4: make room, inherit the victim's hotness."""
        inherited = 0.0
        if len(self.reads) >= self.tracker_capacity:
            assert self.rest, "reference never runs the all-cached corner"
            victim = self._rest_victim()
            inherited = max(self._hot(victim), 0.0)
            del self.reads[victim], self.updates[victim], self.rest[victim]
        self.reads[key] = inherited
        self.updates[key] = 0.0
        self._rest_push(key)

    def _promote(self, key):
        """Algorithm 2 line 7; returns the demoted key (or None)."""
        demoted = None
        if len(self.cached) >= self.capacity:
            demoted = self._cache_victim()
            del self.cached[demoted]
            self._rest_push(demoted)
            self.values.discard(demoted)
        del self.rest[key]
        self._cache_push(key)
        self.values.add(key)
        return demoted

    # ------------------------------------------------------------- protocol

    def access(self, key) -> tuple:
        """One read; returns the decision tuple the optimized side must match."""
        if key in self.reads:
            self.reads[key] += 1.0
            if key in self.cached:
                return ("hit",)
        else:
            self._admit_tracker(key)
            self.reads[key] += 1.0
        hot = self._hot(key)
        qualifies = len(self.cached) < self.capacity or hot > min(
            map(self._hot, self.cached)
        )
        if not qualifies:
            return ("miss", False, None)
        return ("miss", True, self._promote(key))

    def update(self, key) -> tuple:
        """One write: hotness penalty plus local invalidation."""
        if key not in self.reads:
            self._admit_tracker(key)
        self.updates[key] += 1.0
        invalidated = key in self.values
        if invalidated:
            self.values.discard(key)
            del self.cached[key]
            self._rest_push(key)
        return ("update", invalidated)


# --------------------------------------------------------------- optimized


def drive_read(cache: CoTCache, key, evicted: list) -> tuple:
    """Run one fused read and express it as a reference decision tuple."""
    stats = cache.stats
    hits_before = stats.hits
    insertions_before = stats.insertions
    value = cache.get_or_admit(key, lambda k: k)
    assert value == key
    if stats.hits != hits_before:
        return ("hit",)
    admitted = stats.insertions != insertions_before
    return ("miss", admitted, evicted.pop() if evicted else None)


def drive_update(cache: CoTCache, key) -> tuple:
    invalidated = key in cache
    cache.record_update(key)
    assert key not in cache
    return ("update", invalidated)


def assert_same_end_state(cache: CoTCache, ref: ReferenceCoT) -> None:
    """Beyond the per-access decisions: identical final structures."""
    assert set(cache.cached_keys()) == ref.values
    tracker = cache.tracker
    assert set(tracker.tracked_keys()) == set(ref.reads)
    assert set(tracker.cached_keys()) == set(ref.cached)
    for key in ref.reads:
        # Exact float equality: unit-weight hotness is integer-valued, so
        # the incremental accumulation cannot drift from the recompute.
        assert tracker.hotness_of(key) == ref._hot(key)
    tracker.check_invariants()


# ------------------------------------------------------------------ traces


@pytest.mark.parametrize("theta", [0.9, 0.99, 1.2])
def test_read_trace_equivalence(theta: float) -> None:
    """100k-read Zipfian traces: identical decision sequences end to end."""
    keys = ZipfianGenerator(KEY_SPACE, theta=theta, seed=7).keys_array(ACCESSES)
    cache = CoTCache(CAPACITY, tracker_capacity=TRACKER)
    ref = ReferenceCoT(CAPACITY, TRACKER)
    evicted: list = []
    cache.eviction_listeners.append(evicted.append)
    for i, key in enumerate(keys):
        expected = ref.access(key)
        actual = drive_read(cache, key, evicted)
        assert actual == expected, f"divergence at access {i} (key {key})"
    assert not evicted
    assert_same_end_state(cache, ref)


def test_ycsb_b_trace_equivalence() -> None:
    """YCSB-B mix (95% read / 5% update) through the same comparison."""
    mixer = OperationMixer(
        ZipfianGenerator(KEY_SPACE, theta=0.99, seed=11),
        read_fraction=0.95,
        seed=13,
    )
    cache = CoTCache(CAPACITY, tracker_capacity=TRACKER)
    ref = ReferenceCoT(CAPACITY, TRACKER)
    evicted: list = []
    cache.eviction_listeners.append(evicted.append)
    for i, request in enumerate(mixer.next_requests(ACCESSES)):
        if request.op is OpType.GET:
            expected = ref.access(request.key)
            actual = drive_read(cache, request.key, evicted)
        else:
            expected = ref.update(request.key)
            actual = drive_update(cache, request.key)
        assert actual == expected, f"divergence at request {i}"
    assert not evicted
    assert_same_end_state(cache, ref)


def test_run_stream_matches_get_or_admit() -> None:
    """The loop-inlined batch path equals per-key fused accesses exactly."""
    keys = ZipfianGenerator(KEY_SPACE, theta=0.99, seed=21).keys_array(50_000)
    batched = CoTCache(CAPACITY, tracker_capacity=TRACKER)
    fused = CoTCache(CAPACITY, tracker_capacity=TRACKER)
    batched.run_stream(keys)
    for key in keys:
        fused.get_or_admit(key, lambda k: k)
    assert batched.stats.hits == fused.stats.hits
    assert batched.stats.misses == fused.stats.misses
    assert batched.stats.evictions == fused.stats.evictions
    assert batched.stats.insertions == fused.stats.insertions
    assert set(batched.cached_keys()) == set(fused.cached_keys())
    assert {k: batched.tracker.hotness_of(k) for k in batched.tracker.tracked_keys()} == {
        k: fused.tracker.hotness_of(k) for k in fused.tracker.tracked_keys()
    }
    batched.check_invariants()
    fused.check_invariants()


def test_split_lookup_admit_matches_fused() -> None:
    """The generic lookup/admit composition equals the fused path exactly."""
    keys = ZipfianGenerator(KEY_SPACE, theta=1.2, seed=33).keys_array(50_000)
    from repro.policies.base import MISSING

    split = CoTCache(CAPACITY, tracker_capacity=TRACKER)
    fused = CoTCache(CAPACITY, tracker_capacity=TRACKER)
    for key in keys:
        if split.lookup(key) is MISSING:
            split.admit(key, key)
        fused.get_or_admit(key, lambda k: k)
    assert split.stats.hits == fused.stats.hits
    assert split.stats.misses == fused.stats.misses
    assert split.stats.evictions == fused.stats.evictions
    assert set(split.cached_keys()) == set(fused.cached_keys())
    split.check_invariants()
    fused.check_invariants()


@settings(max_examples=25, deadline=None)
@given(
    theta=st.sampled_from([0.9, 0.99, 1.2, 1.5]),
    seed=st.integers(min_value=0, max_value=2**16),
    capacity=st.integers(min_value=2, max_value=64),
    accesses=st.integers(min_value=1, max_value=4_000),
)
def test_engine_stream_matches_reference(theta, seed, capacity, accesses):
    """Property: a :class:`PolicyStreamRunner` run declared through a
    :class:`ScenarioSpec` makes exactly the decisions of
    :class:`ReferenceCoT` on the same trace, for arbitrary seeds, sizes
    and skews — the engine's fused chunked drive adds no decision drift
    over the literal per-access reference."""
    tracker = 4 * capacity
    key_space = 512
    spec = ScenarioSpec(
        scale=Scale.tiny().scaled(key_space=key_space, accesses=accesses),
        workload=WorkloadSpec(dist=f"zipf-{theta}"),
        policy=PolicySpec(name="cot", cache_lines=capacity, tracker_lines=tracker),
        seed=seed,
    )
    result = PolicyStreamRunner().run(spec)

    ref = ReferenceCoT(capacity, tracker)
    keys = ZipfianGenerator(key_space, theta=theta, seed=seed).keys_array(accesses)
    hits = sum(1 for key in keys if ref.access(key) == ("hit",))
    telemetry = result.telemetry
    assert telemetry.total_requests == accesses
    assert telemetry.hits == hits
    assert telemetry.misses == accesses - hits
    assert_same_end_state(result.policy, ref)


def test_get_many_matches_sequential_gets() -> None:
    """The batched client path (probe → per-shard prefetch → in-order
    ``get_or_admit``) must make exactly the decisions of sequential
    ``get`` calls — including duplicate keys inside one batch and
    mid-batch evictions invalidating a prefetch."""
    from repro.cluster.cluster import CacheCluster
    from repro.cluster.client import FrontEndClient
    from repro.workloads.base import format_key

    def new_client():
        cluster = CacheCluster(num_servers=4, virtual_nodes=256, value_size=1)
        policy = CoTCache(32, tracker_capacity=128)
        return FrontEndClient(cluster, policy), cluster

    batched, batched_cluster = new_client()
    sequential, sequential_cluster = new_client()
    generator = ZipfianGenerator(2_000, theta=1.1, seed=41)
    raw = [format_key(k) for k in generator.keys_array(20_000)]
    offset = 0
    for batch_size in (1, 7, 64, 256, 512) * 12:
        batch = raw[offset : offset + batch_size]
        offset += batch_size
        values = batched.get_many(batch)
        for key in batch:
            assert sequential.get(key) == values[key]
    b_stats, s_stats = batched.policy.stats, sequential.policy.stats
    assert b_stats.hits == s_stats.hits
    assert b_stats.misses == s_stats.misses
    assert b_stats.insertions == s_stats.insertions
    assert b_stats.evictions == s_stats.evictions
    assert set(batched.policy.cached_keys()) == set(
        sequential.policy.cached_keys()
    )
    b_tracker, s_tracker = batched.policy.tracker, sequential.policy.tracker
    assert {k: b_tracker.hotness_of(k) for k in b_tracker.tracked_keys()} == {
        k: s_tracker.hotness_of(k) for k in s_tracker.tracked_keys()
    }
    # Load accounting is internally consistent on both paths: the
    # monitor's client-side lookup counts equal the shards' served gets.
    assert batched.monitor.total_loads() == batched_cluster.loads()
    assert sequential.monitor.total_loads() == sequential_cluster.loads()
    # Batching may only *reduce* shard traffic (duplicates of a
    # non-admitted key are fetched once per batch, not once per access).
    for shard, lookups in batched.monitor.total_loads().items():
        assert lookups <= sequential.monitor.total_loads()[shard]
    batched.policy.check_invariants()
