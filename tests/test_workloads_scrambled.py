"""Tests for FNV hashing and the bug-faithful ScrambledZipfian generator."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.workloads.analytical import estimate_zipf_exponent, head_mass
from repro.workloads.fnv import fnv_hash32, fnv_hash64
from repro.workloads.scrambled import (
    ITEM_COUNT,
    USED_ZIPFIAN_CONSTANT,
    ScrambledZipfianGenerator,
)
from repro.workloads.zipfian import ZipfianGenerator


class TestFNV:
    def test_deterministic(self):
        assert fnv_hash64(12345) == fnv_hash64(12345)
        assert fnv_hash32(12345) == fnv_hash32(12345)

    def test_nonnegative(self):
        for value in (0, 1, 2**40, 2**63 - 1, 2**64 - 1):
            assert fnv_hash64(value) >= 0
        for value in (0, 1, 2**31, 2**32 - 1):
            assert fnv_hash32(value) >= 0

    def test_spreads_consecutive_inputs(self):
        hashes = {fnv_hash64(i) % 1000 for i in range(100)}
        # Consecutive ranks land far apart: expect close to 100 distinct
        # buckets modulo birthday collisions (~5 expected at 100/1000).
        assert len(hashes) > 70

    def test_zero_input(self):
        # FNV-1a of eight zero bytes — regression pin so the scramble
        # stays stable across refactors.
        assert fnv_hash64(0) == fnv_hash64(0)
        assert fnv_hash64(0) != fnv_hash64(1)


class TestScrambledZipfian:
    def test_range_and_determinism(self):
        gen = ScrambledZipfianGenerator(500, seed=3)
        keys = list(gen.keys(2000))
        assert all(0 <= k < 500 for k in keys)
        again = ScrambledZipfianGenerator(500, seed=3)
        assert list(again.keys(2000)) == keys

    def test_constants_match_ycsb(self):
        assert ITEM_COUNT == 10_000_000_000
        assert USED_ZIPFIAN_CONSTANT == 0.99

    def test_requested_theta_is_ignored(self):
        """The bug: different requested skews produce identical streams."""
        a = ScrambledZipfianGenerator(1000, requested_theta=0.9, seed=5)
        b = ScrambledZipfianGenerator(1000, requested_theta=1.4, seed=5)
        assert list(a.keys(1000)) == list(b.keys(1000))

    def test_skew_loss_vs_honest_zipfian(self):
        """The paper's finding, in one assertion: the scrambled stream is
        much less skewed than the honest Zipfian at the same setting."""
        n, draws = 5_000, 30_000
        honest = ZipfianGenerator(n, theta=0.99, seed=9)
        scrambled = ScrambledZipfianGenerator(n, requested_theta=0.99, seed=9)
        honest_keys = list(honest.keys(draws))
        scrambled_keys = list(scrambled.keys(draws))
        assert head_mass(honest_keys, 10) > 2 * head_mass(scrambled_keys, 10)
        fitted_honest = estimate_zipf_exponent(honest_keys, max_rank=500)
        fitted_scrambled = estimate_zipf_exponent(scrambled_keys, max_rank=500)
        assert fitted_honest == pytest.approx(0.99, abs=0.1)
        assert fitted_scrambled < fitted_honest - 0.1

    def test_still_somewhat_skewed(self):
        """Scrambling dilutes but does not erase skew: the hottest key
        (wherever it scrambles to) still dominates the uniform share."""
        n, draws = 1000, 30_000
        gen = ScrambledZipfianGenerator(n, seed=13)
        counts = Counter(gen.keys(draws))
        assert max(counts.values()) > 3 * draws / n

    def test_describe_mentions_the_bug(self):
        text = ScrambledZipfianGenerator(10, requested_theta=1.2).describe()
        assert "requested_s=1.2" in text
