"""Tests for the observability layer: tracing, histograms, export.

Covers the four tentpole surfaces of :mod:`repro.obs`:

* deterministic trace sampling and the span-tree renderer;
* traced-vs-untraced decision equivalence on the cluster data plane
  (tracing observes, it never steers);
* exact histogram merging and bounded percentile error;
* Prometheus text-format round-trips (render → parse) covering every
  canonical telemetry counter;
* the golden-output guarantee: a rate-0 tracer plus an attached
  snapshot collector leave experiment output byte-identical.
"""

from __future__ import annotations

import dataclasses
import math
from pathlib import Path

import pytest

import repro.experiments  # noqa: F401  (imports register every experiment)
from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector
from repro.engine import Scale, get_experiment
from repro.engine import runners as engine_runners
from repro.engine import telemetry as T
from repro.engine.telemetry import TelemetryBus
from repro.errors import ConfigurationError, ExperimentError
from repro.obs.export import (
    PrometheusExporter,
    SnapshotCollector,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.hist import LatencyHistogram
from repro.obs.profile import PeriodicSnapshotter, SectionTimer
from repro.obs.trace import Trace, Tracer, render_trace
from repro.policies.registry import make_policy
from repro.workloads.zipfian import ZipfianGenerator

GOLDEN_DIR = Path(__file__).parent / "golden"


class FakeClock:
    """Deterministic clock for span timing tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        self.now += dt
        return self.now


# ---------------------------------------------------------------------------
# tracer sampling


class TestTracerSampling:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ConfigurationError):
            Tracer(sample_rate=-0.1)
        with pytest.raises(ConfigurationError):
            Tracer(max_exemplars=0)

    def test_rate_zero_never_samples(self):
        tracer = Tracer(sample_rate=0.0)
        assert all(tracer.start("request.get") is None for _ in range(100))
        assert tracer.traces_started == 0

    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        traces = [tracer.start("request.get") for _ in range(50)]
        assert all(trace is not None for trace in traces)
        assert tracer.traces_started == 50

    def test_fractional_rate_is_deterministic_and_exact(self):
        tracer = Tracer(sample_rate=0.25)
        sampled = [
            i for i in range(100) if tracer.start("request.get") is not None
        ]
        assert len(sampled) == 25
        # Error-diffusion accumulator: exactly every 4th request.
        assert sampled == list(range(3, 100, 4))
        # A second identically-configured tracer samples the same requests.
        twin = Tracer(sample_rate=0.25)
        assert sampled == [
            i for i in range(100) if twin.start("request.get") is not None
        ]

    def test_inline_gate_matches_start(self):
        """The hot path's inlined credit gate samples identically."""
        reference = Tracer(sample_rate=1.0 / 3.0)
        inlined = Tracer(sample_rate=1.0 / 3.0)
        via_start = [
            i for i in range(60) if reference.start("r") is not None
        ]
        via_gate = []
        for i in range(60):
            inlined.credit += inlined.sample_rate
            if inlined.credit >= 1.0:
                assert inlined.start_sampled("r") is not None
                via_gate.append(i)
        assert via_start == via_gate

    def test_exemplars_keep_slowest_first(self):
        clock = FakeClock()
        tracer = Tracer(sample_rate=1.0, clock=clock, max_exemplars=3)
        for duration in (0.004, 0.001, 0.009, 0.002, 0.007):
            trace = tracer.start("request.get")
            clock.advance(duration)
            tracer.finish(trace)
        durations = [t.duration for t in tracer.exemplars()]
        assert durations == sorted(durations, reverse=True)
        assert len(durations) == 3
        assert durations[0] == pytest.approx(0.009)

    def test_render_slowest_empty(self):
        assert "no traces" in Tracer(sample_rate=1.0).render_slowest()


# ---------------------------------------------------------------------------
# span trees


class TestSpanTrees:
    def test_nested_spans_and_parents(self):
        clock = FakeClock()
        trace = Trace("request.get", clock)
        with trace.span("frontend.cache"):
            clock.advance(1e-6)
            with trace.span("ring.route"):
                clock.advance(2e-6)
        trace.finish()
        names = [span.name for span in trace.spans]
        assert names == ["request.get", "frontend.cache", "ring.route"]
        assert trace.spans[1].parent == 0
        assert trace.spans[2].parent == 1
        assert trace.spans[2].duration == pytest.approx(2e-6)
        assert trace.duration == pytest.approx(3e-6)

    def test_finish_closes_abandoned_spans(self):
        clock = FakeClock()
        trace = Trace("request.get", clock)
        trace.span("shard.lookup")  # never exited (exception path)
        clock.advance(5e-6)
        trace.finish()
        assert not math.isnan(trace.spans[1].end)
        assert trace.spans[1].duration == pytest.approx(5e-6)

    def test_explicit_timestamps(self):
        trace = Trace("request.get", FakeClock(), at=10.0)
        trace.add_span("net.request", 10.0, 10.5, shard="cache-3")
        trace.finish(at=11.0)
        assert trace.duration == pytest.approx(1.0)
        (span,) = trace.find("net.request")
        assert span.meta == {"shard": "cache-3"}

    def test_render_trace_shape(self):
        clock = FakeClock()
        trace = Trace("request.get", clock)
        trace.note("outcome", "miss")
        with trace.span("ring.route"):
            clock.advance(2e-6)
        with trace.span("shard.lookup", shard="cache-3"):
            clock.advance(1e-3)
        trace.finish()
        text = render_trace(trace)
        lines = text.splitlines()
        assert lines[0].startswith("request.get ")
        assert "outcome=miss" in lines[0]
        assert "├─ ring.route 2.0µs" in text
        assert "└─ shard.lookup" in text and "shard=cache-3" in text


# ---------------------------------------------------------------------------
# traced cluster path: equivalence + span content


def drive(client: FrontEndClient, accesses: int = 2_000) -> list:
    generator = ZipfianGenerator(500, theta=0.99, seed=7)
    keys = [f"usertable:{k}" for k in generator.keys_array(accesses)]
    return [client.get(key) for key in keys]


class TestTracedClusterPath:
    def build(self, tracer, faults=None):
        cluster = CacheCluster(
            num_servers=4, value_size=1, virtual_nodes=512, faults=faults
        )
        policy = make_policy("cot", 64, tracker_capacity=256)
        return FrontEndClient(cluster, policy, tracer=tracer)

    def test_traced_run_matches_untraced_decisions(self):
        plain = self.build(None)
        traced = self.build(Tracer(sample_rate=1.0))
        values_plain = drive(plain)
        values_traced = drive(traced)
        assert values_plain == values_traced
        assert plain.policy.stats.hits == traced.policy.stats.hits
        assert plain.policy.stats.misses == traced.policy.stats.misses
        assert plain.monitor.total_loads() == traced.monitor.total_loads()

    def test_sampled_miss_records_full_span_tree(self):
        tracer = Tracer(sample_rate=1.0)
        client = self.build(tracer)
        client.get("usertable:1")  # cold miss → full fetch pipeline
        trace = tracer.exemplars()[0]
        assert trace.meta["outcome"] == "miss"
        names = {span.name for span in trace.spans}
        assert {
            "request.get",
            "frontend.cache",
            "ring.route",
            "shard.lookup",
            "storage.fallback",
            "shard.backfill",
        } <= names

    def test_hit_trace_is_lean(self):
        tracer = Tracer(sample_rate=1.0)
        client = self.build(tracer)
        client.get("usertable:1")
        client.get("usertable:1")  # now a front-end hit
        hit = next(
            t for t in tracer.exemplars() if t.meta["outcome"] == "hit"
        )
        assert {span.name for span in hit.spans} == {
            "request.get",
            "frontend.cache",
        }

    def test_degraded_read_traced(self):
        faults = FaultInjector(seed=1)
        tracer = Tracer(sample_rate=1.0)
        client = self.build(tracer, faults=faults)
        for server_id in client.cluster.server_ids:
            faults.kill(server_id)
        value = client.get("usertable:9")
        assert value is not None
        degraded = [
            t for t in tracer.exemplars() if t.meta.get("outcome") == "degraded"
        ]
        assert degraded
        assert degraded[0].find("storage.degraded_read")

    def test_rate_zero_tracer_attached_changes_nothing(self):
        plain = self.build(None)
        gated = self.build(Tracer(sample_rate=0.0))
        assert drive(plain) == drive(gated)
        assert plain.policy.stats.hits == gated.policy.stats.hits
        assert gated.tracer.traces_started == 0


# ---------------------------------------------------------------------------
# histograms


class TestLatencyHistogram:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram(lowest=0.0)
        with pytest.raises(ConfigurationError):
            LatencyHistogram(lowest=1.0, highest=0.5)
        with pytest.raises(ConfigurationError):
            LatencyHistogram(buckets_per_decade=0)

    def test_streaming_stats_exact(self):
        histogram = LatencyHistogram()
        for value in (1e-3, 2e-3, 3e-3):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2e-3)
        assert histogram.min_value == 1e-3
        assert histogram.max_value == 3e-3

    def test_percentile_edges(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.percentile(50)
        histogram.record(5e-3)
        assert histogram.percentile(0) == pytest.approx(5e-3)
        assert histogram.percentile(100) == pytest.approx(5e-3)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_percentile_within_bucket_width(self):
        histogram = LatencyHistogram()
        values = [1e-4 + i * 1e-6 for i in range(1000)]
        histogram.record_many(values)
        growth = 10.0 ** (1.0 / 10)
        for q in (50, 90, 99):
            exact = values[int(q / 100 * (len(values) - 1))]
            estimate = histogram.percentile(q)
            assert exact / growth <= estimate <= exact * growth

    def test_overflow_and_underflow(self):
        histogram = LatencyHistogram(lowest=1e-3, highest=1.0)
        histogram.record(1e-9)  # below range → first bucket
        histogram.record(50.0)  # above range → overflow bucket
        assert histogram.count == 2
        assert histogram.percentile(100) == 50.0
        bounds, counts = zip(*histogram.nonzero_buckets())
        assert counts == (1, 1)
        assert bounds[-1] == math.inf

    def test_merge_is_exact(self):
        parts = [LatencyHistogram() for _ in range(3)]
        whole = LatencyHistogram()
        for i, histogram in enumerate(parts):
            for j in range(200):
                value = (i + 1) * 1e-4 + j * 1e-6
                histogram.record(value)
                whole.record(value)
        merged = LatencyHistogram.merged(parts)
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total)
        assert list(merged.cumulative_buckets()) == list(
            whole.cumulative_buckets()
        )
        assert merged.percentile(99) == pytest.approx(whole.percentile(99))

    def test_merged_percentiles_weighted_by_traffic(self):
        """3-client synthetic stream: the busy client dominates the merge."""
        busy = LatencyHistogram()
        busy.record_many([1e-4] * 10_000)
        quiet_a = LatencyHistogram()
        quiet_a.record_many([1e-2] * 50)
        quiet_b = LatencyHistogram()
        quiet_b.record_many([1e-1] * 50)
        merged = LatencyHistogram.merged([busy, quiet_a, quiet_b])
        assert merged.count == 10_100
        growth = 10.0 ** (1.0 / 10)
        # p50 tracks the busy client; p99.9 miss would catch the tail.
        assert merged.percentile(50) <= 1e-4 * growth
        assert merged.percentile(99.9) >= 1e-2 / growth

    def test_incompatible_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram().merge(LatencyHistogram(buckets_per_decade=5))

    def test_merged_empty(self):
        assert LatencyHistogram.merged([]).count == 0

    def test_copy_is_independent(self):
        histogram = LatencyHistogram()
        histogram.record(1e-3)
        clone = histogram.copy()
        clone.record(2e-3)
        assert histogram.count == 1
        assert clone.count == 2

    def test_summary_shape_matches_recorder(self):
        empty = LatencyHistogram().summary()
        assert empty == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0,
        }
        histogram = LatencyHistogram()
        histogram.record_many([1e-3] * 10)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "p50", "p99", "max"}
        assert summary["count"] == 10


# ---------------------------------------------------------------------------
# profiling hooks


class TestProfilingHooks:
    def test_section_timer(self):
        clock = FakeClock()
        timer = SectionTimer(clock=clock)
        with timer.section("route"):
            clock.advance(0.5)
        with timer.section("route"):
            clock.advance(0.25)
        with timer.section("serve"):
            clock.advance(1.0)
        assert timer.total("route") == pytest.approx(0.75)
        assert timer.calls("route") == 2
        report = timer.report()
        assert "route" in report and "serve" in report
        timer.reset()
        assert timer.total("route") == 0.0

    def test_periodic_snapshotter(self):
        bus = TelemetryBus()
        snapshotter = PeriodicSnapshotter(bus, every=10)
        for i in range(1, 31):
            bus.inc(T.HITS)
            snapshotter.maybe_sample(i)
        assert [index for index, _snap in snapshotter.samples] == [10, 20, 30]
        assert snapshotter.counter_deltas(T.HITS) == [
            (10, 10), (20, 10), (30, 10),
        ]
        # Re-sampling the same index is idempotent.
        count = len(snapshotter.samples)
        assert snapshotter.maybe_sample(30) is False
        assert len(snapshotter.samples) == count
        with pytest.raises(ConfigurationError):
            PeriodicSnapshotter(bus, every=0)


# ---------------------------------------------------------------------------
# prometheus export


def full_bus_snapshot():
    """A snapshot exercising every canonical counter plus extras."""
    bus = TelemetryBus()
    canonical = [
        T.HITS, T.MISSES, T.ACCESSES, T.TOTAL_REQUESTS, T.DEGRADED_READS,
        T.RETRIES, T.OPEN_REJECTIONS, T.BREAKER_OPENS, T.BREAKER_CLOSES,
        T.FAILED_INVALIDATIONS, T.INCORRECT_READS,
        T.DECAY_TRIGGERS, T.DECAY_EPOCH_DECAYS,
        T.ADAPTIVE_SWITCHES, T.ADAPTIVE_EPOCHS, T.ADAPTIVE_SHADOW_SAMPLES,
        T.NET_CONNECTIONS, T.NET_RECONNECTS, T.NET_REQUESTS, T.NET_BATCHES,
        T.NET_TIMEOUTS, T.NET_PROTOCOL_ERRORS, T.NET_FAULT_ERRORS,
        T.NET_BYTES_IN, T.NET_BYTES_OUT,
    ]
    for i, name in enumerate(canonical):
        bus.inc(name, i + 1)
    bus.set_gauge("elastic.cache_lines", 512)
    bus.set_gauge("run.mean_latency", 2.44e-4)
    bus.record_shard_loads({"cache-0": 100, "cache-1": 140})
    for i in range(500):
        bus.observe(T.REQUEST_LATENCY, 1e-4 + i * 1e-6)
    for depth, count in {1: 40, 4: 25, 32: 10}.items():
        for _ in range(count):
            bus.observe(T.NET_BATCH_DEPTH, float(depth))
    return bus.snapshot(), canonical


class TestPrometheusExport:
    def test_round_trip_covers_all_canonical_counters(self):
        snapshot, canonical = full_bus_snapshot()
        text = render_prometheus(snapshot)
        series = parse_prometheus(text)
        for raw in canonical:
            name = "cot_" + raw.replace(".", "_") + "_total"
            assert name in series, f"{name} missing from export"
            (labels, value) = series[name][0]
            assert labels["run"] == "0"
            assert value == float(canonical.index(raw) + 1)

    def test_round_trip_histogram_is_consistent(self):
        snapshot, _ = full_bus_snapshot()
        series = parse_prometheus(render_prometheus(snapshot))
        buckets = series["cot_request_latency_seconds_bucket"]
        counts = [value for _labels, value in buckets]
        assert counts == sorted(counts), "cumulative buckets must be monotone"
        bounds = [labels["le"] for labels, _value in buckets]
        assert bounds[-1] == "+Inf"
        (_, count) = series["cot_request_latency_seconds_count"][0]
        (_, total) = series["cot_request_latency_seconds_sum"][0]
        assert count == counts[-1] == 500
        histogram = snapshot.histogram(T.REQUEST_LATENCY)
        assert total == pytest.approx(histogram.total)

    def test_gauges_and_shard_loads_round_trip(self):
        snapshot, _ = full_bus_snapshot()
        series = parse_prometheus(render_prometheus(snapshot))
        assert series["cot_elastic_cache_lines"][0][1] == 512.0
        shards = {
            labels["shard"]: value
            for labels, value in series["cot_shard_lookups_total"]
        }
        assert shards == {"cache-0": 100.0, "cache-1": 140.0}

    def test_net_counters_round_trip(self):
        snapshot, canonical = full_bus_snapshot()
        series = parse_prometheus(render_prometheus(snapshot))
        net_names = [raw for raw in canonical if raw.startswith("net.")]
        assert len(net_names) == 9  # every wire counter is canonical
        for raw in net_names:
            name = "cot_" + raw.replace(".", "_") + "_total"
            assert name in series, f"{name} missing from export"
            assert series[name][0][1] == float(canonical.index(raw) + 1)

    def test_net_batch_depth_histogram_round_trip(self):
        snapshot, _ = full_bus_snapshot()
        series = parse_prometheus(render_prometheus(snapshot))
        buckets = series["cot_net_batch_depth_seconds_bucket"]
        counts = [value for _labels, value in buckets]
        assert counts == sorted(counts)
        (_, count) = series["cot_net_batch_depth_seconds_count"][0]
        (_, total) = series["cot_net_batch_depth_seconds_sum"][0]
        assert count == 75  # 40 + 25 + 10 flushes
        histogram = snapshot.histogram(T.NET_BATCH_DEPTH)
        assert total == pytest.approx(histogram.total)
        assert histogram.total == pytest.approx(40 * 1 + 25 * 4 + 10 * 32)

    def test_multiple_snapshots_get_run_labels(self):
        exporter = PrometheusExporter()
        snapshot, _ = full_bus_snapshot()
        exporter.add(snapshot)
        exporter.add(snapshot)
        series = parse_prometheus(exporter.render())
        runs = {labels["run"] for labels, _ in series["cot_policy_hits_total"]}
        assert runs == {"0", "1"}

    def test_help_and_type_emitted_once_per_family(self):
        exporter = PrometheusExporter()
        snapshot, _ = full_bus_snapshot()
        exporter.add(snapshot)
        exporter.add(snapshot)
        text = exporter.render()
        assert text.count("# TYPE cot_policy_hits_total counter") == 1
        assert text.endswith("\n")

    def test_parser_rejects_malformed_input(self):
        with pytest.raises(ExperimentError):
            parse_prometheus("cot_orphan_metric 1")  # no TYPE declared
        with pytest.raises(ExperimentError):
            parse_prometheus(
                "# TYPE cot_x gauge\ncot_x{bad-label=\"1\"} 1"
            )
        with pytest.raises(ExperimentError):
            parse_prometheus("# TYPE cot_x gauge\ncot_x not-a-number")

    def test_empty_exporter_renders_placeholder(self):
        assert "no snapshots" in PrometheusExporter().render()

    def test_write_mode_counters_round_trip_end_to_end(self):
        """A write-mode run's ``write.*`` telemetry survives render → parse.

        Runs a real write-behind scenario through :class:`ClusterRunner`
        (not a hand-built bus) so the whole plumbing chain is on the
        hook: policy stats → ``_publish`` → snapshot → exporter with
        ``*_total`` naming → strict parser.
        """
        from repro.engine import (
            ClusterRunner,
            ScenarioSpec,
            TopologySpec,
            WorkloadSpec,
            WriteSpec,
        )

        spec = ScenarioSpec(
            scale=Scale("obs-write", key_space=200, accesses=3_000,
                        num_clients=2, num_servers=3),
            workload=WorkloadSpec(dist="zipf-0.9", read_fraction=0.7),
            topology=TopologySpec(
                write=WriteSpec(mode="write-behind", dirty_limit=4,
                                flush_every=256)
            ),
            seed=17,
        )
        snapshot = ClusterRunner().run(spec).telemetry
        counters = [
            T.WRITE_STORAGE_WRITES, T.WRITE_THROUGH_WRITES, T.WRITE_BUFFERED,
            T.WRITE_COALESCED, T.WRITE_FLUSHED, T.WRITE_FLUSHES,
            T.WRITE_BOUND_FLUSHES, T.WRITE_LOST, T.WRITE_SYNC_FALLBACKS,
            T.WRITE_TTL_EXPIRATIONS,
        ]
        series = parse_prometheus(render_prometheus(snapshot))
        for raw in counters:
            name = "cot_" + raw.replace(".", "_") + "_total"
            assert name in series, f"{name} missing from export"
            (labels, value) = series[name][0]
            assert labels["run"] == "0"
            assert value == float(snapshot.counters[raw])
        for gauge in ("write.dirty_buffer_depth", "write.peak_dirty_depth"):
            name = "cot_" + gauge.replace(".", "_")
            assert series[name][0][1] == snapshot.gauges[gauge]
        # The run really buffered and drained: the exported numbers are
        # live, not zero-valued placeholders.
        assert series["cot_write_buffered_writes_total"][0][1] > 0
        assert series["cot_write_flushed_writes_total"][0][1] > 0
        assert series["cot_write_peak_dirty_depth"][0][1] <= 4.0

    def test_decay_counters_round_trip_end_to_end(self):
        """An elastic run's ``decay.*`` telemetry survives render → parse.

        Same shape as the write-mode test above: a real
        :class:`ClusterRunner` scenario with an elastic front end running
        :class:`ExponentialDecay`, so the chain decay policy →
        ``_publish`` → snapshot → exporter → strict parser is exercised
        end to end (the counters used to live only on the policy object
        and never reached the bus).
        """
        from repro.core.decay import ExponentialDecay
        from repro.core.elastic import ElasticCoTClient
        from repro.engine import (
            ClusterRunner,
            PolicySpec,
            ScenarioSpec,
            TopologySpec,
            WorkloadSpec,
        )

        def factory(cluster, _i):
            return ElasticCoTClient(
                cluster,
                target_imbalance=1.1,
                initial_cache=8,
                initial_tracker=16,
                base_epoch=500,
                decay=ExponentialDecay(rate=0.9),
            )

        spec = ScenarioSpec(
            scale=Scale("obs-decay", key_space=500, accesses=6_000,
                        num_clients=1, num_servers=3),
            workload=WorkloadSpec(dist="zipf-1.2"),
            policy=PolicySpec(),
            topology=TopologySpec(num_clients=1),
            client_factory=factory,
            seed=23,
        )
        snapshot = ClusterRunner().run(spec).telemetry
        assert snapshot.counters[T.DECAY_EPOCH_DECAYS] >= 1
        series = parse_prometheus(render_prometheus(snapshot))
        for raw in (T.DECAY_TRIGGERS, T.DECAY_EPOCH_DECAYS):
            name = "cot_" + raw.replace(".", "_") + "_total"
            assert name in series, f"{name} missing from export"
            (labels, value) = series[name][0]
            assert labels["run"] == "0"
            assert value == float(snapshot.counters[raw])
        assert series["cot_decay_epoch_decays_total"][0][1] >= 1.0

    def test_adaptive_counters_round_trip_end_to_end(self):
        """An arbitrated run's ``adaptive.*`` telemetry survives the
        render → parse round trip, including the per-candidate shadow
        hit-rate gauges."""
        from repro.engine import (
            ArbitrationSpec,
            PolicySpec,
            PolicyStreamRunner,
            ScenarioSpec,
            WorkloadSpec,
        )

        spec = ScenarioSpec(
            scale=Scale("obs-adaptive", key_space=2_000, accesses=8_000,
                        num_clients=1, num_servers=3),
            workload=WorkloadSpec(dist="zipf-1.2"),
            policy=PolicySpec(
                name="lru",
                cache_lines=64,
                tracker_lines=256,
                arbitration=ArbitrationSpec(epoch_length=512, sample_shift=1),
            ),
            seed=29,
        )
        result = PolicyStreamRunner().run(spec)
        snapshot = result.telemetry
        assert snapshot.counters[T.ADAPTIVE_EPOCHS] >= 1
        series = parse_prometheus(render_prometheus(snapshot))
        for raw in (
            T.ADAPTIVE_SWITCHES, T.ADAPTIVE_EPOCHS, T.ADAPTIVE_SHADOW_SAMPLES
        ):
            name = "cot_" + raw.replace(".", "_") + "_total"
            assert name in series, f"{name} missing from export"
            assert series[name][0][1] == float(snapshot.counters[raw])
        assert (
            series["cot_adaptive_regret"][0][1]
            == snapshot.gauges[T.ADAPTIVE_REGRET]
        )
        for candidate in result.policy.candidates:
            gauge = f"cot_adaptive_shadow_hit_rate_{candidate}"
            assert gauge in series, f"{gauge} missing from export"


# ---------------------------------------------------------------------------
# telemetry bugfixes


class TestTelemetryFixes:
    def test_max_imbalance_vacuous_default_is_one(self):
        """No epochs closed → vacuously balanced (1.0), matching
        ``load_imbalance``'s convention — not the old impossible 0.0."""
        phase = T.PhaseTelemetry(
            index=0, label="steady", down=(), reads=0, hits=0,
            degraded_reads=0, retries=0, open_rejections=0, breaker_opens=0,
            breaker_closes=0, incorrect_reads=0, start_epoch=0,
            epoch_events=(),
        )
        assert phase.max_imbalance == 1.0

    def test_bus_histograms_freeze_into_snapshots(self):
        bus = TelemetryBus()
        bus.observe(T.REQUEST_LATENCY, 1e-3)
        snapshot = bus.snapshot()
        bus.observe(T.REQUEST_LATENCY, 2e-3)
        assert snapshot.histogram(T.REQUEST_LATENCY).count == 1
        assert bus.histogram(T.REQUEST_LATENCY).count == 2
        assert snapshot.request_latency is not None

    def test_record_histogram_merges_prebuilt(self):
        bus = TelemetryBus()
        part = LatencyHistogram()
        part.record(1e-3)
        bus.record_histogram(T.REQUEST_LATENCY, part)
        bus.record_histogram(T.REQUEST_LATENCY, part)
        assert bus.histogram(T.REQUEST_LATENCY).count == 2
        part.record(9.0)  # the bus copied, not aliased
        assert bus.histogram(T.REQUEST_LATENCY).count == 2


# ---------------------------------------------------------------------------
# golden outputs stay byte-identical under observation


def traced_rendered_output(experiment_id: str, tracer: Tracer, monkeypatch):
    """Run an experiment with ``tracer`` injected into every spec."""
    for runner_cls in (
        engine_runners.PolicyStreamRunner,
        engine_runners.ClusterRunner,
        engine_runners.SimRunner,
    ):
        original = runner_cls.run

        def wrapper(self, spec, _original=original):
            return _original(self, dataclasses.replace(spec, tracer=tracer))

        monkeypatch.setattr(runner_cls, "run", wrapper)
    outcome = get_experiment(experiment_id).run(scale=Scale.smoke())
    results = outcome if isinstance(outcome, list) else [outcome]
    return "\n\n".join(result.render() for result in results) + "\n"


class TestObservationIsInert:
    @pytest.mark.parametrize("experiment_id", ["fig6", "table2"])
    def test_golden_output_with_rate0_tracer_and_collector(
        self, experiment_id, monkeypatch
    ):
        golden = (GOLDEN_DIR / f"{experiment_id}.smoke.txt").read_text(
            encoding="utf-8"
        )
        tracer = Tracer(sample_rate=0.0)
        with SnapshotCollector() as collector:
            rendered = traced_rendered_output(
                experiment_id, tracer, monkeypatch
            )
        assert rendered == golden
        assert tracer.traces_started == 0
        assert collector.snapshots, "collector saw no snapshots"
        # The collected telemetry renders as parseable exposition text.
        series = parse_prometheus(collector.render())
        assert any(name.endswith("_total") for name in series)
