"""Tests for the cache-order ablation policy and eviction listeners."""

from __future__ import annotations

import random

import pytest

from repro.core.cache import CoTCache
from repro.errors import ConfigurationError
from repro.policies.arc import ARCCache
from repro.policies.base import MISSING
from repro.policies.lfu import LFUCache
from repro.policies.lru import LRUCache
from repro.policies.lruk import LRUKCache
from repro.policies.registry import make_policy
from repro.policies.tracked_lru import TrackedLRUCache


def access(policy, key):
    if policy.lookup(key) is MISSING:
        policy.admit(key, key)


class TestTrackedLRU:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TrackedLRUCache(8, tracker_capacity=8)

    def test_registry(self):
        policy = make_policy("tracked_lru", 4, tracker_capacity=16)
        assert isinstance(policy, TrackedLRUCache)
        assert policy.tracker_capacity == 16

    def test_admission_filter_matches_cot(self):
        """The filter is identical: a once-seen cold key cannot enter a
        full cache whose occupants are hotter."""
        policy = TrackedLRUCache(1, tracker_capacity=8)
        for _ in range(5):
            access(policy, "hot")
        access(policy, "cold")
        assert "hot" in policy and "cold" not in policy

    def test_eviction_is_lru_not_hotness(self):
        """Contrast with CoT: when an admitted key forces an eviction,
        the *least recently used* cached key goes — even if it is hotter
        than the other occupant."""
        policy = TrackedLRUCache(2, tracker_capacity=16)
        for _ in range(10):
            access(policy, "hot-but-stale")
        access(policy, "recent-a")
        # warm a contender above h_min so it qualifies
        for _ in range(12):
            policy.lookup("contender")
        policy.admit("contender", "v")
        assert "contender" in policy
        assert "hot-but-stale" not in policy  # LRU victim despite hotness
        # CoT at the same state would have evicted the *coldest* key.
        cot = CoTCache(2, tracker_capacity=16)
        for _ in range(10):
            access(cot, "hot-but-stale")
        access(cot, "recent-a")
        for _ in range(12):
            cot.lookup("contender")
        cot.admit("contender", "v")
        assert "hot-but-stale" in cot
        assert "recent-a" not in cot

    def test_capacity_and_consistency_under_stream(self):
        policy = TrackedLRUCache(4, tracker_capacity=32)
        rng = random.Random(3)
        for _ in range(2000):
            key = rng.randrange(50)
            access(policy, key)
            if rng.random() < 0.05:
                policy.record_update(key)
        assert len(policy) <= 4
        # Tracker's cached set mirrors the value store.
        cached = set(policy.cached_keys())
        tracker_cached = set(policy._tracker.cached_keys())
        assert cached == tracker_cached

    def test_resize(self):
        policy = TrackedLRUCache(4, tracker_capacity=16)
        for key in "abcd":
            access(policy, key)
        policy.resize(2)
        assert len(policy) == 2


class TestEvictionListeners:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LRUCache(2),
            lambda: LFUCache(2),
            lambda: ARCCache(2),
            lambda: LRUKCache(2, k=2, history_capacity=8),
            lambda: CoTCache(2, tracker_capacity=16),
            lambda: TrackedLRUCache(2, tracker_capacity=16),
        ],
        ids=["lru", "lfu", "arc", "lru2", "cot", "tracked_lru"],
    )
    def test_listener_sees_every_capacity_eviction(self, factory):
        policy = factory()
        evicted: list[object] = []
        policy.eviction_listeners.append(evicted.append)
        rng = random.Random(11)
        for _ in range(600):
            key = rng.randrange(30)
            # Warm keys so admission filters (CoT/tracked) let keys in.
            policy.lookup(key)
            policy.lookup(key)
            policy.admit(key, key)
        assert len(evicted) == policy.stats.evictions
        assert len(policy) <= 2

    def test_listener_sees_resize_evictions(self):
        policy = LRUCache(4)
        evicted: list[object] = []
        policy.eviction_listeners.append(evicted.append)
        for key in "abcd":
            access(policy, key)
        policy.resize(1)
        assert sorted(evicted) == ["a", "b", "c"]

    def test_invalidation_not_reported(self):
        """Caller-initiated invalidations are not 'evictions'."""
        policy = LRUCache(2)
        evicted: list[object] = []
        policy.eviction_listeners.append(evicted.append)
        access(policy, "a")
        policy.invalidate("a")
        assert evicted == []
