"""Tests for workload phases, hot-set rotation, and trace record/replay."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, WorkloadExhausted
from repro.workloads.base import format_key
from repro.workloads.mixer import OperationMixer
from repro.workloads.request import OpType, Request
from repro.workloads.shift import Phase, PhasedWorkload, RotatingHotSetGenerator
from repro.workloads.trace import TraceGenerator, record_trace, replay_trace
from repro.workloads.uniform import UniformGenerator
from repro.workloads.zipfian import ZipfianGenerator


class TestPhasedWorkload:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PhasedWorkload([])

    def test_unbounded_middle_phase_rejected(self):
        gen = UniformGenerator(10, seed=1)
        with pytest.raises(ConfigurationError):
            PhasedWorkload([Phase(gen, None), Phase(gen, 5)])

    def test_phase_length_validation(self):
        gen = UniformGenerator(10, seed=1)
        with pytest.raises(ConfigurationError):
            Phase(gen, 0)

    def test_transitions_at_boundaries(self):
        hot = ZipfianGenerator(100, theta=1.4, seed=2)
        cold = UniformGenerator(100, seed=3)
        phased = PhasedWorkload([Phase(hot, 50), Phase(cold, None)])
        assert phased.phase_index == 0
        list(phased.keys(50))
        assert phased.phase_index == 0  # index moves on the *next* draw
        phased.next_key()
        assert phased.phase_index == 1

    def test_final_phase_unbounded(self):
        gen = UniformGenerator(10, seed=4)
        phased = PhasedWorkload([Phase(gen, None)])
        list(phased.keys(1000))  # must not exhaust
        assert phased.phase_index == 0

    def test_key_space_is_max(self):
        a = UniformGenerator(10, seed=5)
        b = UniformGenerator(50, seed=6)
        assert PhasedWorkload([Phase(a, 5), Phase(b, None)]).key_space == 50

    def test_describe(self):
        gen = UniformGenerator(10, seed=1)
        assert "phased" in PhasedWorkload([Phase(gen, None)]).describe()

    def test_total_length(self):
        gen = UniformGenerator(10, seed=1)
        assert PhasedWorkload([Phase(gen, 5), Phase(gen, 7)]).total_length == 12
        assert PhasedWorkload([Phase(gen, 5), Phase(gen, None)]).total_length is None

    def test_bounded_final_phase_exhausts_next_key(self):
        a = UniformGenerator(10, seed=1)
        b = UniformGenerator(10, seed=2)
        phased = PhasedWorkload([Phase(a, 3), Phase(b, 4)])
        drawn = [phased.next_key() for _ in range(7)]
        assert len(drawn) == 7
        assert phased.phase_index == 1
        with pytest.raises(WorkloadExhausted):
            phased.next_key()
        # The error is sticky: further draws keep raising.
        with pytest.raises(WorkloadExhausted):
            phased.next_key()

    def test_bounded_single_phase_exhausts(self):
        phased = PhasedWorkload([Phase(UniformGenerator(10, seed=3), 5)])
        list(phased.keys(5))
        with pytest.raises(WorkloadExhausted):
            phased.next_key()

    def test_phase_boundary_counts_per_generator(self):
        # Each phase generator must serve exactly its configured length:
        # draws 1-10 come from phase 0, draws 11-20 from phase 1, draw 21
        # raises. The index flips on the 11th draw, not the 10th.
        phased = PhasedWorkload(
            [
                Phase(UniformGenerator(4, seed=4), 10),
                Phase(UniformGenerator(4, seed=5), 10),
            ]
        )
        observed = []
        for _ in range(20):
            phased.next_key()
            observed.append(phased.phase_index)
        assert observed == [0] * 10 + [1] * 10
        with pytest.raises(WorkloadExhausted):
            phased.next_key()

    def test_bounded_final_phase_exhausts_keys_array(self):
        a = UniformGenerator(10, seed=6)
        b = UniformGenerator(10, seed=7)
        phased = PhasedWorkload([Phase(a, 8), Phase(b, 8)])
        arr = phased.keys_array(16)
        assert len(arr) == 16
        with pytest.raises(WorkloadExhausted):
            phased.keys_array(1)

    def test_keys_array_overrun_raises(self):
        phased = PhasedWorkload([Phase(UniformGenerator(10, seed=8), 4)])
        with pytest.raises(WorkloadExhausted):
            phased.keys_array(5)

    def test_batch_draws_match_scalar_draws(self):
        def build() -> PhasedWorkload:
            return PhasedWorkload(
                [
                    Phase(ZipfianGenerator(64, theta=1.2, seed=9), 33),
                    Phase(UniformGenerator(64, seed=10), 31),
                ]
            )

        one = build()
        scalar = [one.next_key() for _ in range(64)]
        assert list(build().keys_array(64)) == scalar


class TestRotatingHotSet:
    def test_rotation_changes_identity_not_shape(self):
        inner_a = ZipfianGenerator(100, theta=1.2, seed=7)
        inner_b = ZipfianGenerator(100, theta=1.2, seed=7)
        plain = RotatingHotSetGenerator(inner_a, offset=0)
        rotated = RotatingHotSetGenerator(inner_b, offset=10)
        keys_plain = list(plain.keys(500))
        keys_rotated = list(rotated.keys(500))
        assert keys_rotated == [(k + 10) % 100 for k in keys_plain]

    def test_rotate_accumulates_modulo(self):
        gen = RotatingHotSetGenerator(UniformGenerator(10, seed=8), offset=7)
        assert gen.rotate(5) == 2
        assert gen.offset == 2

    def test_range(self):
        gen = RotatingHotSetGenerator(ZipfianGenerator(50, seed=9), offset=49)
        assert all(0 <= k < 50 for k in gen.keys(1000))


class TestTrace:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        requests = [
            Request(OpType.GET, format_key(1)),
            Request(OpType.SET, format_key(2), value=(2, 1)),
            Request(OpType.GET, format_key(3)),
            Request(OpType.DELETE, format_key(4)),
        ]
        assert record_trace(path, requests) == 4
        replayed = list(replay_trace(path))
        assert [r.op for r in replayed] == [r.op for r in requests]
        assert [r.key for r in replayed] == [r.key for r in requests]

    def test_mixer_to_trace(self, tmp_path):
        path = tmp_path / "trace.txt"
        mixer = OperationMixer(UniformGenerator(100, seed=10), seed=11)
        record_trace(path, mixer.requests(200))
        assert len(list(replay_trace(path))) == 200

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\nr 5\nu 6\n")
        replayed = list(replay_trace(path))
        assert len(replayed) == 2
        assert replayed[0].key == format_key(5)
        assert replayed[1].op is OpType.SET

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("x nope\n")
        with pytest.raises(ConfigurationError):
            list(replay_trace(path))

    def test_trace_generator(self, tmp_path):
        path = tmp_path / "trace.txt"
        record_trace(path, [Request(OpType.GET, format_key(i)) for i in range(5)])
        gen = TraceGenerator(path, key_space=10)
        assert [gen.next_key() for _ in range(5)] == [0, 1, 2, 3, 4]
        with pytest.raises(StopIteration):
            gen.next_key()
