"""State-machine tests for the elastic resizing controller (Algorithm 3).

The controller is pure decision logic, so every paper behaviour can be
pinned down with synthetic epoch snapshots: ratio discovery with the
step-back dip, binary-search expansion, alpha_t capture, the three steady
cases, the shrink path, and the statistical guards.
"""

from __future__ import annotations

import pytest

from repro.core.epoch import EpochSnapshot
from repro.core.resizing import (
    DecisionKind,
    Phase,
    ResizeDecision,
    ResizingController,
)
from repro.errors import ConfigurationError


def snap(
    index=0,
    cache=2,
    tracker=4,
    imbalance=1.0,
    alpha_c=0.0,
    alpha_k_c=0.0,
    accesses=5000,
    sample=100_000,
) -> EpochSnapshot:
    return EpochSnapshot(
        index=index,
        cache_capacity=cache,
        tracker_capacity=tracker,
        imbalance=imbalance,
        alpha_c=alpha_c,
        alpha_k_c=alpha_k_c,
        accesses=accesses,
        imbalance_sample=sample,
    )


def make_controller(**kw) -> ResizingController:
    defaults = dict(target_imbalance=1.1, warmup_epochs=0)
    defaults.update(kw)
    return ResizingController(**defaults)


class TestValidation:
    def test_bad_target(self):
        with pytest.raises(ConfigurationError):
            ResizingController(target_imbalance=0.9)

    def test_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            ResizingController(epsilon=1.0)

    def test_bad_warmup(self):
        with pytest.raises(ConfigurationError):
            ResizingController(warmup_epochs=-1)

    def test_bad_min_sizes(self):
        with pytest.raises(ConfigurationError):
            ResizingController(min_cache=2, min_tracker=2)

    def test_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            ResizingController(max_ratio=1)


class TestWarmup:
    def test_warmup_consumes_epochs(self):
        controller = make_controller(warmup_epochs=3)
        for _ in range(3):
            decision = controller.observe(snap())
            assert decision.kind is DecisionKind.WARMUP
        assert controller.observe(snap()).kind is not DecisionKind.WARMUP

    def test_resize_rearms_warmup(self):
        controller = make_controller(warmup_epochs=2)
        controller.observe(snap())
        controller.observe(snap())
        decision = controller.observe(snap(alpha_c=1.0))  # ratio probe resize
        assert decision.resized
        assert controller.observe(snap()).kind is DecisionKind.WARMUP


class TestRatioSearch:
    def test_first_epoch_doubles_tracker(self):
        controller = make_controller()
        decision = controller.observe(snap(cache=2, tracker=4, alpha_c=5.0))
        assert decision.kind is DecisionKind.DOUBLE_TRACKER
        assert decision.tracker_capacity == 8
        assert decision.cache_capacity == 2

    def test_significant_gain_keeps_doubling(self):
        controller = make_controller()
        controller.observe(snap(tracker=4, alpha_c=5.0))
        decision = controller.observe(snap(tracker=8, alpha_c=10.0))
        assert decision.kind is DecisionKind.DOUBLE_TRACKER
        assert decision.tracker_capacity == 16

    def test_insignificant_gain_steps_back(self):
        """The paper's Figure 7 dip: expand to 16, no benefit, settle at 8."""
        controller = make_controller()
        controller.observe(snap(tracker=4, alpha_c=5.0))
        controller.observe(snap(tracker=8, alpha_c=10.0))
        decision = controller.observe(snap(tracker=16, alpha_c=10.1))
        assert decision.kind is DecisionKind.SETTLE_RATIO
        assert decision.tracker_capacity == 8
        assert controller.phase is Phase.SIZE_SEARCH

    def test_near_zero_alpha_settles_immediately(self):
        """Uniform workloads: noise gains must not chase tracker growth."""
        controller = make_controller()
        controller.observe(snap(tracker=4, alpha_c=0.01))
        decision = controller.observe(snap(tracker=8, alpha_c=0.02))
        assert decision.kind is DecisionKind.SETTLE_RATIO
        assert controller.phase is Phase.SIZE_SEARCH

    def test_ratio_cap(self):
        controller = make_controller(max_ratio=4)
        controller.observe(snap(cache=2, tracker=4, alpha_c=5.0))
        decision = controller.observe(snap(cache=2, tracker=8, alpha_c=50.0))
        # 16 would exceed max_ratio * cache = 8: settle instead.
        assert decision.kind is DecisionKind.SETTLE_RATIO


class TestSizeSearch:
    def make_in_size_search(self, **kw) -> ResizingController:
        controller = make_controller(**kw)
        controller.phase = Phase.SIZE_SEARCH
        return controller

    def test_violation_doubles_cache_and_tracker(self):
        controller = self.make_in_size_search()
        decision = controller.observe(
            snap(cache=4, tracker=16, imbalance=2.0, alpha_c=3.0)
        )
        assert decision.kind is DecisionKind.EXPAND
        assert decision.cache_capacity == 8
        assert decision.tracker_capacity == 32  # ratio 4 preserved
        assert controller.alpha_target == 3.0

    def test_target_reached_captures_alpha_t(self):
        controller = self.make_in_size_search()
        decision = controller.observe(
            snap(cache=8, tracker=32, imbalance=1.05, alpha_c=7.8)
        )
        assert decision.kind is DecisionKind.TARGET_REACHED
        assert controller.phase is Phase.STEADY
        assert controller.alpha_target == 7.8

    def test_tolerance_band(self):
        """Within 2% of I_t counts as achieved (the paper's no-churn band)."""
        controller = self.make_in_size_search(imbalance_tolerance=0.02)
        decision = controller.observe(snap(imbalance=1.115, alpha_c=1.0))
        assert decision.kind is DecisionKind.TARGET_REACHED

    def test_small_sample_violation_ignored(self):
        """With the opt-in hard floor, a tiny-sample violation does not
        expand — the controller settles on the (unproven) target."""
        controller = self.make_in_size_search(min_imbalance_sample=10_000)
        decision = controller.observe(snap(imbalance=3.0, sample=500))
        assert decision.kind is DecisionKind.TARGET_REACHED
        assert controller.phase is Phase.STEADY

    def test_noise_allowance_scales_target(self):
        controller = self.make_in_size_search()
        noisy = EpochSnapshot(
            index=0, cache_capacity=2, tracker_capacity=4,
            imbalance=1.3, alpha_c=1.0, alpha_k_c=0.0,
            accesses=1000, imbalance_sample=500, noise_allowance=1.25,
        )
        decision = controller.observe(noisy)
        # 1.3 <= 1.122 * 1.25: not a significant violation.
        assert decision.kind is DecisionKind.TARGET_REACHED

    def test_zero_sample_means_trust_measurement(self):
        controller = self.make_in_size_search()
        decision = controller.observe(snap(imbalance=3.0, sample=0))
        assert decision.kind is DecisionKind.EXPAND

    def test_futility_settles(self):
        controller = self.make_in_size_search(
            futility_rounds=2, warmup_epochs=0
        )
        # Three expands with no improvement in I_c.
        d1 = controller.observe(snap(cache=2, tracker=4, imbalance=1.30))
        assert d1.kind is DecisionKind.EXPAND
        d2 = controller.observe(snap(cache=4, tracker=8, imbalance=1.30))
        assert d2.kind is DecisionKind.EXPAND
        d3 = controller.observe(snap(cache=8, tracker=16, imbalance=1.30))
        assert d3.kind is DecisionKind.NONE
        assert controller.phase is Phase.STEADY

    def test_improving_expansion_not_futile(self):
        controller = self.make_in_size_search(futility_rounds=2)
        controller.observe(snap(cache=2, tracker=4, imbalance=2.0))
        controller.observe(snap(cache=4, tracker=8, imbalance=1.6))
        controller.observe(snap(cache=8, tracker=16, imbalance=1.3))
        decision = controller.observe(snap(cache=16, tracker=32, imbalance=1.18))
        assert decision.kind is DecisionKind.EXPAND

    def test_max_cache_stops_expansion(self):
        controller = self.make_in_size_search(max_cache=8)
        decision = controller.observe(snap(cache=8, tracker=32, imbalance=5.0))
        assert decision.kind is DecisionKind.NONE
        assert controller.phase is Phase.STEADY


class TestSteady:
    def make_steady(self, alpha_t=10.0, **kw) -> ResizingController:
        controller = make_controller(**kw)
        controller.phase = Phase.STEADY
        controller.alpha_target = alpha_t
        return controller

    def test_case3_quality_ok_does_nothing(self):
        controller = self.make_steady()
        decision = controller.observe(
            snap(imbalance=1.0, alpha_c=10.5, alpha_k_c=0.5)
        )
        assert decision.kind is DecisionKind.NONE

    def test_both_high_does_nothing_while_balanced(self):
        controller = self.make_steady()
        decision = controller.observe(
            snap(imbalance=1.0, alpha_c=12.0, alpha_k_c=11.0)
        )
        assert decision.kind is DecisionKind.NONE

    def test_case1_quality_collapse_starts_shrink(self):
        controller = self.make_steady()
        decision = controller.observe(
            snap(cache=8, tracker=64, imbalance=1.0, alpha_c=0.5, alpha_k_c=0.3)
        )
        assert decision.kind is DecisionKind.RESET_RATIO
        assert decision.tracker_capacity == 16  # 2:1 reset
        assert controller.phase is Phase.SHRINKING

    def test_case2_rotation_triggers_decay(self):
        controller = self.make_steady()
        decision = controller.observe(
            snap(imbalance=1.0, alpha_c=0.5, alpha_k_c=11.0)
        )
        assert decision.kind is DecisionKind.DECAY
        assert decision.decay
        assert not decision.resized

    def test_violation_reenters_size_search(self):
        controller = self.make_steady()
        decision = controller.observe(
            snap(cache=4, tracker=8, imbalance=2.0, alpha_c=12.0)
        )
        assert decision.kind is DecisionKind.EXPAND
        assert controller.phase is Phase.SIZE_SEARCH

    def test_epsilon_hysteresis(self):
        """alpha_c just below alpha_t must NOT trigger anything."""
        controller = self.make_steady(alpha_t=10.0, epsilon=0.05)
        decision = controller.observe(
            snap(imbalance=1.0, alpha_c=9.6, alpha_k_c=0.0)
        )
        assert decision.kind is DecisionKind.NONE

    def test_at_min_sizes_no_shrink_churn(self):
        controller = self.make_steady(min_cache=1)
        decision = controller.observe(
            snap(cache=1, tracker=2, imbalance=1.0, alpha_c=0.0, alpha_k_c=0.0)
        )
        assert decision.kind is DecisionKind.NONE


class TestShrinking:
    def make_shrinking(self, alpha_t=10.0, **kw) -> ResizingController:
        controller = make_controller(**kw)
        controller.phase = Phase.SHRINKING
        controller.alpha_target = alpha_t
        return controller

    def test_halves_while_quality_low(self):
        controller = self.make_shrinking()
        decision = controller.observe(
            snap(cache=16, tracker=32, imbalance=1.0, alpha_c=0.1, alpha_k_c=0.1)
        )
        assert decision.kind is DecisionKind.SHRINK
        assert decision.cache_capacity == 8
        assert decision.tracker_capacity == 16

    def test_stops_at_min(self):
        controller = self.make_shrinking(min_cache=1, min_tracker=2)
        decision = controller.observe(
            snap(cache=1, tracker=2, imbalance=1.0, alpha_c=0.0)
        )
        assert decision.kind is DecisionKind.NONE
        assert controller.phase is Phase.STEADY

    def test_quality_recovery_completes_shrink(self):
        controller = self.make_shrinking(alpha_t=10.0)
        decision = controller.observe(
            snap(cache=16, tracker=32, imbalance=1.0, alpha_c=10.2)
        )
        assert decision.kind is DecisionKind.NONE
        assert controller.phase is Phase.STEADY

    def test_violation_doubles_back(self):
        controller = self.make_shrinking()
        decision = controller.observe(
            snap(cache=8, tracker=16, imbalance=2.0, alpha_c=0.1)
        )
        assert decision.kind is DecisionKind.EXPAND
        assert controller.phase is Phase.SIZE_SEARCH


class TestDecision:
    def test_resized_property(self):
        assert ResizeDecision(DecisionKind.EXPAND, 4, 8).resized
        assert not ResizeDecision(DecisionKind.NONE, 4, 8).resized
        assert not ResizeDecision(DecisionKind.DECAY, 4, 8, decay=True).resized

    def test_effective_target(self):
        controller = ResizingController(
            target_imbalance=1.1, imbalance_tolerance=0.02
        )
        assert controller.effective_target == pytest.approx(1.122)
