"""Tests for the Count-Min Sketch tracker and the space-saving comparison."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.countmin import CMSTopK, CountMinSketch
from repro.core.spacesaving import SpaceSaving
from repro.errors import ConfigurationError
from repro.workloads.zipfian import ZipfianGenerator


class TestCountMinSketch:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(8, 0)
        with pytest.raises(ConfigurationError):
            CountMinSketch.from_error(0.0)

    def test_from_error_sizing(self):
        sketch = CountMinSketch.from_error(0.01, 0.01)
        assert sketch.width >= 272  # ceil(e/0.01)
        assert sketch.depth >= 5    # ceil(ln 100)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(8).add("a", 0)

    def test_estimates_never_underestimate(self):
        sketch: CountMinSketch[int] = CountMinSketch(64, 4, seed=1)
        truth = Counter()
        gen = ZipfianGenerator(200, theta=1.0, seed=2)
        for key in gen.keys(3000):
            sketch.add(key)
            truth[key] += 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 40), min_size=1, max_size=300))
    def test_overestimate_bound(self, stream):
        width, depth = 64, 4
        sketch: CountMinSketch[int] = CountMinSketch(width, depth, seed=3)
        truth = Counter()
        for key in stream:
            sketch.add(key)
            truth[key] += 1
        # Classic bound (non-conservative): err <= N * e / w whp; the
        # conservative variant only tightens it. Allow the full bound.
        bound = len(stream) * 2.72 / width + 1e-9
        for key, count in truth.items():
            assert sketch.estimate(key) - count <= bound + len(stream) * 0.05

    def test_conservative_tighter_than_plain(self):
        stream = list(ZipfianGenerator(500, theta=1.0, seed=4).keys(5000))
        conservative: CountMinSketch[int] = CountMinSketch(
            32, 4, conservative=True, seed=5
        )
        plain: CountMinSketch[int] = CountMinSketch(
            32, 4, conservative=False, seed=5
        )
        truth = Counter(stream)
        for key in stream:
            conservative.add(key)
            plain.add(key)
        err_conservative = sum(
            conservative.estimate(k) - c for k, c in truth.items()
        )
        err_plain = sum(plain.estimate(k) - c for k, c in truth.items())
        assert err_conservative <= err_plain

    def test_scale(self):
        sketch: CountMinSketch[str] = CountMinSketch(16, 2, seed=6)
        for _ in range(8):
            sketch.add("k")
        sketch.scale(0.5)
        assert sketch.estimate("k") == pytest.approx(4.0)
        with pytest.raises(ConfigurationError):
            sketch.scale(0)


class TestCMSTopK:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CMSTopK(0)

    def test_tracks_hottest_on_strong_skew(self):
        tracker: CMSTopK[int] = CMSTopK(8, width=1024, seed=7)
        gen = ZipfianGenerator(2_000, theta=1.4, seed=8)
        for key in gen.keys(30_000):
            tracker.offer(key)
        top_keys = [k for k, _ in tracker.top(4)]
        assert 0 in top_keys and 1 in top_keys

    def test_heap_bounded(self):
        tracker: CMSTopK[int] = CMSTopK(4, width=64, seed=9)
        for key in range(500):
            tracker.offer(key)
        assert len(tracker) <= 4

    def test_membership_and_memory(self):
        tracker: CMSTopK[str] = CMSTopK(2, width=32, depth=2, seed=10)
        tracker.offer("a")
        assert "a" in tracker
        assert tracker.memory_cells() == 32 * 2 + 1


class TestSpaceSavingVsCMS:
    """The design-choice evidence: at CoT-sized (small) trackers,
    space-saving recalls the true top-k better per unit memory."""

    @staticmethod
    def _recall(found: list[int], truth: list[int]) -> float:
        return len(set(found) & set(truth)) / len(truth)

    def test_spacesaving_beats_cms_at_equal_small_memory(self):
        k = 16
        stream = list(ZipfianGenerator(20_000, theta=0.9, seed=11).keys(60_000))
        true_top = [key for key, _ in Counter(stream).most_common(k)]

        # Space-saving with m counters vs CMS with the same cell budget.
        budget = 256  # cells
        ss: SpaceSaving[int] = SpaceSaving(budget // 2)  # 2 cells per entry
        cms: CMSTopK[int] = CMSTopK(k, width=(budget - k) // 4, depth=4, seed=12)
        for key in stream:
            ss.offer(key)
            cms.offer(key)
        ss_recall = self._recall([e.key for e in ss.top(k)], true_top)
        cms_recall = self._recall([key for key, _ in cms.top(k)], true_top)
        assert ss_recall >= cms_recall
        assert ss_recall >= 0.8  # space-saving is near-exact here

    def test_both_converge_with_ample_memory(self):
        k = 8
        stream = list(ZipfianGenerator(5_000, theta=1.2, seed=13).keys(40_000))
        true_top = [key for key, _ in Counter(stream).most_common(k)]
        ss: SpaceSaving[int] = SpaceSaving(2048)
        cms: CMSTopK[int] = CMSTopK(k, width=8192, depth=5, seed=14)
        for key in stream:
            ss.offer(key)
            cms.offer(key)
        assert self._recall([e.key for e in ss.top(k)], true_top) >= 0.9
        assert self._recall([key for key, _ in cms.top(k)], true_top) >= 0.9
