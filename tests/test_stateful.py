"""Hypothesis stateful (model-based) tests.

Two machines:

* :class:`LRUModelMachine` — drives :class:`LRUCache` against a trivially
  correct reference model (an ordered dict) through arbitrary interleaved
  operations, checking full behavioural equivalence.
* :class:`CoTMachine` — drives :class:`CoTCache` through arbitrary
  lookups, admissions, updates, invalidations, resizes and decays,
  checking the structural invariants after every step.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.cache import CoTCache
from repro.policies.base import MISSING
from repro.policies.lru import LRUCache

KEYS = st.integers(0, 15)


class LRUModelMachine(RuleBasedStateMachine):
    """LRUCache must behave exactly like an OrderedDict-based model."""

    CAPACITY = 4

    def __init__(self) -> None:
        super().__init__()
        self.cache = LRUCache(self.CAPACITY)
        self.model: OrderedDict[int, object] = OrderedDict()

    @rule(key=KEYS)
    def lookup(self, key: int) -> None:
        actual = self.cache.lookup(key)
        if key in self.model:
            self.model.move_to_end(key)
            assert actual == self.model[key]
        else:
            assert actual is MISSING

    @rule(key=KEYS, value=st.integers())
    def admit(self, key: int, value: int) -> None:
        self.cache.admit(key, value)
        if key in self.model:
            self.model.move_to_end(key)
        elif len(self.model) >= self.CAPACITY:
            self.model.popitem(last=False)
        self.model[key] = value

    @rule(key=KEYS)
    def invalidate(self, key: int) -> None:
        self.cache.invalidate(key)
        self.model.pop(key, None)

    @invariant()
    def contents_match(self) -> None:
        assert set(self.cache.cached_keys()) == set(self.model)
        assert len(self.cache) == len(self.model)


class CoTMachine(RuleBasedStateMachine):
    """CoTCache structural invariants under arbitrary operation mixes."""

    def __init__(self) -> None:
        super().__init__()
        self.cache = CoTCache(3, tracker_capacity=9)

    @rule(key=KEYS)
    def read(self, key: int) -> None:
        if self.cache.lookup(key) is MISSING:
            self.cache.admit(key, key)

    @rule(key=KEYS)
    def read_fused(self, key: int) -> None:
        """The fused fast path must uphold the same invariants as the
        split lookup/admit composition it replaces — interleaving both
        in one machine also proves they compose on shared state."""
        assert self.cache.get_or_admit(key, lambda k: k) == key

    @rule(keys=st.lists(KEYS, max_size=8))
    def read_stream(self, keys: list[int]) -> None:
        self.cache.run_stream(keys)

    @rule(key=KEYS)
    def write(self, key: int) -> None:
        self.cache.record_update(key)

    @rule(key=KEYS)
    def invalidate(self, key: int) -> None:
        self.cache.invalidate(key)

    @rule(cache=st.integers(1, 6))
    def resize(self, cache: int) -> None:
        self.cache.set_sizes(cache, 3 * cache)

    @rule(factor=st.floats(0.25, 1.0))
    def decay(self, factor: float) -> None:
        self.cache.decay(factor)

    @invariant()
    def structure_holds(self) -> None:
        self.cache.check_invariants()

    @invariant()
    def cached_values_within_capacity(self) -> None:
        assert len(self.cache) <= self.cache.capacity

    @invariant()
    def hmin_separates_sets(self) -> None:
        """Every cached key is at least as hot as h_min."""
        tracker = self.cache.tracker
        if tracker.cached_count == 0:
            return
        h_min = min(
            tracker.hotness_of(key) for key in tracker.cached_keys()
        )
        reported = tracker.h_min()
        if reported != float("-inf"):
            assert abs(reported - h_min) < 1e-9


TestLRUModel = LRUModelMachine.TestCase
TestCoTStateful = CoTMachine.TestCase

TestLRUModel.settings = settings(max_examples=40, stateful_step_count=60,
                                 deadline=None)
TestCoTStateful.settings = settings(max_examples=40, stateful_step_count=60,
                                    deadline=None)
