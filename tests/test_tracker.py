"""Tests for CoT's two-set tracker (Algorithm 1 + the h_min split)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hotness import AccessType, HotnessModel
from repro.core.tracker import CoTTracker
from repro.errors import ConfigurationError, KeyNotTrackedError


def make_tracker(k=8, c=2, **kw) -> CoTTracker[str]:
    return CoTTracker(k, c, **kw)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoTTracker(0, 0)
        with pytest.raises(ConfigurationError):
            CoTTracker(4, -1)
        with pytest.raises(ConfigurationError):
            CoTTracker(4, 4)  # cache must be < tracker
        with pytest.raises(ConfigurationError):
            CoTTracker(4, 5)

    def test_zero_cache_capacity_allowed(self):
        tracker = CoTTracker(4, 0)
        tracker.track("a")
        assert not tracker.qualifies_for_cache("a")
        assert tracker.h_min() == math.inf


class TestTracking:
    def test_track_returns_hotness(self):
        tracker = make_tracker()
        assert tracker.track("a") == 1.0
        assert tracker.track("a") == 2.0

    def test_update_access_decreases_hotness(self):
        tracker = make_tracker()
        tracker.track("a")
        tracker.track("a")
        assert tracker.track("a", AccessType.UPDATE) == 1.0

    def test_eviction_picks_coldest_non_cached(self):
        tracker = make_tracker(k=3, c=1)
        tracker.track("hot")
        tracker.track("hot")
        tracker.track("hot")
        tracker.promote("hot")
        tracker.track("warm")
        tracker.track("warm")
        tracker.track("cold")
        # Tracker is full; new key must evict "cold" (coldest non-cached).
        tracker.track("new")
        assert "cold" not in tracker
        assert "hot" in tracker and "warm" in tracker and "new" in tracker

    def test_benefit_of_the_doubt(self):
        tracker = make_tracker(k=2, c=0)
        tracker.track("a")
        tracker.track("a")          # hotness 2
        tracker.track("b")          # hotness 1
        tracker.track("c")          # evicts b (hotness 1), inherits 1, +1
        assert tracker.hotness_of("c") == pytest.approx(2.0)

    def test_inherit_hotness_disabled(self):
        tracker = CoTTracker(2, 0, inherit_hotness=False)
        tracker.track("a")
        tracker.track("a")
        tracker.track("b")
        tracker.track("c")
        assert tracker.hotness_of("c") == pytest.approx(1.0)

    def test_hotness_of_untracked_raises(self):
        with pytest.raises(KeyNotTrackedError):
            make_tracker().hotness_of("ghost")

    def test_stats_of(self):
        tracker = make_tracker()
        tracker.track("a")
        tracker.track("a", AccessType.UPDATE)
        stats = tracker.stats_of("a")
        assert stats.read_count == 1.0
        assert stats.update_count == 1.0


class TestHminSplit:
    def test_h_min_with_free_capacity_is_minus_inf(self):
        tracker = make_tracker(k=8, c=2)
        tracker.track("a")
        assert tracker.h_min() == -math.inf

    def test_h_min_is_cache_minimum(self):
        tracker = make_tracker(k=8, c=2)
        for _ in range(3):
            tracker.track("a")
        for _ in range(2):
            tracker.track("b")
        tracker.promote("a")
        tracker.promote("b")
        assert tracker.h_min() == 2.0

    def test_qualifies_requires_strictly_hotter(self):
        tracker = make_tracker(k=8, c=1)
        tracker.track("a")
        tracker.track("a")
        tracker.promote("a")
        tracker.track("b")
        tracker.track("b")  # equal hotness: does not qualify
        assert not tracker.qualifies_for_cache("b")
        tracker.track("b")
        assert tracker.qualifies_for_cache("b")

    def test_cached_key_never_qualifies(self):
        tracker = make_tracker()
        tracker.track("a")
        tracker.promote("a")
        assert not tracker.qualifies_for_cache("a")


class TestPromoteDemote:
    def test_promote_moves_between_sets(self):
        tracker = make_tracker()
        tracker.track("a")
        assert not tracker.is_cached("a")
        assert tracker.promote("a") is None
        assert tracker.is_cached("a")
        assert tracker.cached_count == 1
        assert tracker.tracked_only_count == 0

    def test_promote_full_cache_demotes_coldest(self):
        tracker = make_tracker(k=8, c=1)
        tracker.track("a")
        tracker.promote("a")
        tracker.track("b")
        tracker.track("b")
        demoted = tracker.promote("b")
        assert demoted == "a"
        assert tracker.is_cached("b")
        assert not tracker.is_cached("a")
        assert "a" in tracker  # still tracked

    def test_promote_untracked_raises(self):
        with pytest.raises(KeyNotTrackedError):
            make_tracker().promote("ghost")

    def test_promote_with_zero_capacity_raises(self):
        tracker = CoTTracker(4, 0)
        tracker.track("a")
        with pytest.raises(ConfigurationError):
            tracker.promote("a")

    def test_demote(self):
        tracker = make_tracker()
        tracker.track("a")
        tracker.promote("a")
        tracker.demote("a")
        assert not tracker.is_cached("a")
        assert "a" in tracker

    def test_demote_uncached_raises(self):
        tracker = make_tracker()
        tracker.track("a")
        with pytest.raises(KeyNotTrackedError):
            tracker.demote("a")

    def test_evict_removes_entirely(self):
        tracker = make_tracker()
        tracker.track("a")
        tracker.promote("a")
        tracker.evict("a")
        assert "a" not in tracker
        with pytest.raises(KeyNotTrackedError):
            tracker.evict("a")


class TestResizeAndDecay:
    def test_resize_validation(self):
        tracker = make_tracker()
        with pytest.raises(ConfigurationError):
            tracker.resize(0, 0)
        with pytest.raises(ConfigurationError):
            tracker.resize(4, 4)

    def test_shrink_demotes_cached_and_returns_them(self):
        tracker = make_tracker(k=8, c=4)
        for key in "abcd":
            tracker.track(key)
            tracker.promote(key)
        dropped = tracker.resize(4, 1)
        assert len(dropped) == 3
        assert tracker.cached_count == 1
        assert len(tracker) <= 4

    def test_shrink_keeps_hottest_cached(self):
        tracker = make_tracker(k=8, c=2)
        for _ in range(5):
            tracker.track("hot")
        tracker.track("cold")
        tracker.promote("hot")
        tracker.promote("cold")
        tracker.resize(4, 1)
        assert tracker.is_cached("hot")
        assert not tracker.is_cached("cold")

    def test_grow_is_lossless(self):
        tracker = make_tracker(k=4, c=1)
        for key in "abc":
            tracker.track(key)
        before = set(tracker.tracked_keys())
        tracker.resize(16, 4)
        assert set(tracker.tracked_keys()) == before

    def test_decay_halves_everything(self):
        tracker = make_tracker()
        for _ in range(4):
            tracker.track("a")
        tracker.promote("a")
        tracker.decay(0.5)
        assert tracker.hotness_of("a") == pytest.approx(2.0)
        tracker.check_invariants()

    def test_decay_validation(self):
        with pytest.raises(ConfigurationError):
            make_tracker().decay(0.0)
        with pytest.raises(ConfigurationError):
            make_tracker().decay(1.5)

    def test_top(self):
        tracker = make_tracker()
        for count, key in [(3, "a"), (1, "b"), (2, "c")]:
            for _ in range(count):
                tracker.track(key)
        assert [k for k, _ in tracker.top(2)] == ["a", "c"]


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(3, 24), st.integers(1, 8))
    def test_random_stream_keeps_invariants(self, seed, k, c_raw):
        c = min(c_raw, k - 1)
        rng = random.Random(seed)
        tracker: CoTTracker[int] = CoTTracker(k, c)
        for _ in range(400):
            key = rng.randrange(40)
            access = AccessType.UPDATE if rng.random() < 0.1 else AccessType.READ
            tracker.track(key, access)
            if (
                c > 0
                and key in tracker
                and not tracker.is_cached(key)
                and tracker.qualifies_for_cache(key)
            ):
                tracker.promote(key)
            tracker.check_invariants()
        assert len(tracker) <= k
        assert tracker.cached_count <= c

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_skewed_stream_caches_hot_keys(self, seed):
        """After a skewed stream, the cached set must be the true head."""
        rng = random.Random(seed)
        tracker: CoTTracker[int] = CoTTracker(32, 4)
        # Key i gets weight proportional to 2^-i over 16 keys.
        population = list(range(16))
        weights = [2.0 ** (-i) for i in population]
        for _ in range(2000):
            key = rng.choices(population, weights)[0]
            tracker.track(key)
            if not tracker.is_cached(key) and tracker.qualifies_for_cache(key):
                tracker.promote(key)
        cached = set(tracker.cached_keys())
        # The two hottest keys are unambiguous; they must be cached.
        assert {0, 1} <= cached
