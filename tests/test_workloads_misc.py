"""Tests for uniform/hotspot/latest/gaussian generators, keys, and mixing."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workloads.base import KEY_PREFIX, format_key, parse_key
from repro.workloads.gaussian import GaussianGenerator
from repro.workloads.hotspot import HotspotGenerator
from repro.workloads.latest import SkewedLatestGenerator
from repro.workloads.mixer import TAO_READ_FRACTION, OperationMixer
from repro.workloads.request import OpType, Request
from repro.workloads.uniform import UniformGenerator


class TestKeys:
    def test_format_parse_roundtrip(self):
        for key_id in (0, 1, 999_999):
            assert parse_key(format_key(key_id)) == key_id

    def test_prefix(self):
        assert format_key(7) == f"{KEY_PREFIX}7"

    def test_parse_rejects_foreign_keys(self):
        with pytest.raises(ValueError):
            parse_key("other:7")


class TestUniform:
    def test_range(self):
        gen = UniformGenerator(100, seed=1)
        assert all(0 <= k < 100 for k in gen.keys(5000))

    def test_roughly_even(self):
        gen = UniformGenerator(10, seed=2)
        counts = Counter(gen.keys(20_000))
        assert min(counts.values()) > 0.8 * 2000
        assert max(counts.values()) < 1.2 * 2000

    def test_determinism(self):
        assert list(UniformGenerator(50, seed=3).keys(100)) == list(
            UniformGenerator(50, seed=3).keys(100)
        )


class TestHotspot:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotspotGenerator(100, hot_set_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HotspotGenerator(100, hot_opn_fraction=1.5)

    def test_hot_fraction_respected(self):
        gen = HotspotGenerator(
            1000, hot_set_fraction=0.01, hot_opn_fraction=0.9, seed=4
        )
        assert gen.hot_count == 10
        draws = list(gen.keys(20_000))
        hot = sum(1 for k in draws if k < gen.hot_count)
        assert hot / len(draws) == pytest.approx(0.9, abs=0.02)

    def test_cold_keys_covered(self):
        gen = HotspotGenerator(
            100, hot_set_fraction=0.1, hot_opn_fraction=0.5, seed=5
        )
        assert any(k >= gen.hot_count for k in gen.keys(1000))

    def test_all_hot(self):
        gen = HotspotGenerator(10, hot_set_fraction=1.0, hot_opn_fraction=0.5, seed=6)
        assert all(0 <= k < 10 for k in gen.keys(500))


class TestLatest:
    def test_recent_keys_hot(self):
        gen = SkewedLatestGenerator(1000, theta=0.99, seed=7)
        counts = Counter(gen.keys(20_000))
        assert counts[gen.latest] == max(counts.values())

    def test_advance_moves_hot_spot(self):
        gen = SkewedLatestGenerator(1000, theta=1.2, seed=8)
        first = gen.latest
        gen.advance(100)
        assert gen.latest == (first + 100) % 1000
        counts = Counter(gen.keys(10_000))
        assert counts[gen.latest] > counts.get(first, 0)

    def test_wraparound(self):
        gen = SkewedLatestGenerator(10, seed=9)
        gen.advance(25)
        assert 0 <= gen.latest < 10
        assert all(0 <= k < 10 for k in gen.keys(500))


class TestGaussian:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianGenerator(100, center=100)
        with pytest.raises(ConfigurationError):
            GaussianGenerator(100, sigma=0)

    def test_concentrated_near_center(self):
        gen = GaussianGenerator(1000, center=500, sigma=10, seed=10)
        draws = list(gen.keys(5000))
        near = sum(1 for k in draws if abs(k - 500) <= 30)
        assert near / len(draws) > 0.95

    def test_range(self):
        gen = GaussianGenerator(100, center=5, sigma=50, seed=11)
        assert all(0 <= k < 100 for k in gen.keys(3000))


class TestMixer:
    def test_tao_ratio(self):
        gen = UniformGenerator(100, seed=12)
        mixer = OperationMixer(gen, seed=13)
        ops = [r.op for r in mixer.requests(20_000)]
        reads = sum(1 for op in ops if op is OpType.GET)
        assert reads / len(ops) == pytest.approx(TAO_READ_FRACTION, abs=0.005)

    def test_write_requests_carry_values(self):
        gen = UniformGenerator(100, seed=14)
        mixer = OperationMixer(gen, read_fraction=0.0, seed=15)
        request = mixer.next_request()
        assert request.op is OpType.SET
        assert request.value is not None
        assert not request.is_read

    def test_read_only(self):
        gen = UniformGenerator(100, seed=16)
        mixer = OperationMixer(gen, read_fraction=1.0)
        assert all(r.is_read for r in mixer.requests(500))

    def test_keys_formatted(self):
        gen = UniformGenerator(100, seed=17)
        mixer = OperationMixer(gen)
        assert mixer.next_request().key.startswith(KEY_PREFIX)

    def test_validation(self):
        gen = UniformGenerator(10)
        with pytest.raises(ConfigurationError):
            OperationMixer(gen, read_fraction=1.5)
        with pytest.raises(ConfigurationError):
            OperationMixer(gen, value_size=-1)

    def test_describe(self):
        gen = UniformGenerator(10, seed=1)
        assert "uniform" in OperationMixer(gen).describe()


class TestRequest:
    def test_frozen(self):
        request = Request(OpType.GET, "usertable:1")
        with pytest.raises(AttributeError):
            request.key = "x"  # type: ignore[misc]

    def test_is_read(self):
        assert Request(OpType.GET, "k").is_read
        assert not Request(OpType.SET, "k", value=1).is_read
        assert not Request(OpType.DELETE, "k").is_read
