"""Tests for the replicated hot-key tier (router, routing, coherence).

Covers the promotion/demotion protocol (epoch transitions, tracker-driven
refresh, hysteresis), power-of-two-choices routing (load spreading,
OPEN-breaker exclusion, primary fallback), write-fanout coherence
(quarantine on failed invalidation, cold-revival clearing), the engine's
replication axis, and a hypothesis state machine asserting zero stale
reads under random promote/demote/write/kill/revive interleavings.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector
from repro.cluster.replication import (
    HotKeyRouter,
    ReplicationConfig,
    tracker_report,
)
from repro.cluster.retry import (
    BreakerConfig,
    BreakerState,
    ClusterGuard,
    RetryPolicy,
)
from repro.core.cache import CoTCache
from repro.engine import (
    ClusterRunner,
    PolicySpec,
    ReplicationSpec,
    Scale,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    cluster_spec_parallelizable,
)
from repro.errors import ConfigurationError
from repro.policies.base import MISSING
from repro.policies.lru import LRUCache


def make_cluster(n=8, seed=0):
    faults = FaultInjector(seed=seed)
    cluster = CacheCluster(
        num_servers=n, virtual_nodes=256, value_size=1, faults=faults
    )
    return cluster, faults


class StubTrackerPolicy:
    """A fake front end whose tracker reports a fixed heavy-hitter list."""

    def __init__(self, report):
        self.tracker = self
        self._report = list(report)

    def top(self, n):
        return self._report[:n]


def make_client(cluster, router=None, seed=1, policy=None, threshold=3,
                cooldown=1e9):
    guard = ClusterGuard(
        cluster.server_ids,
        retry=RetryPolicy(max_attempts=2, base_backoff=1e-4),
        breaker=BreakerConfig(failure_threshold=threshold, cooldown=cooldown),
    )
    client = FrontEndClient(
        cluster, policy if policy is not None else LRUCache(8), guard=guard
    )
    if router is not None:
        client.attach_router(router, seed=seed)
    return client


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(degree=0)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(choices=0)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(min_share=0.0)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(min_share=0.1, demote_share=0.2)

    def test_demote_share_defaults_to_half(self):
        assert ReplicationConfig(min_share=0.1).effective_demote_share == 0.05
        assert (
            ReplicationConfig(min_share=0.1, demote_share=0.02)
            .effective_demote_share
            == 0.02
        )


class TestPromotionProtocol:
    def test_promote_places_distinct_replicas_primary_first(self):
        cluster, _ = make_cluster()
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        replicas = router.promote("usertable:0")
        assert len(replicas) == 3
        assert len(set(replicas)) == 3
        assert replicas[0] == cluster.ring.server_for("usertable:0")
        assert router.is_replicated("usertable:0")
        assert router.replicas("usertable:0") == replicas

    def test_promote_is_idempotent_and_epochs_advance(self):
        cluster, _ = make_cluster()
        router = HotKeyRouter(cluster)
        epoch0 = router.epoch
        first = router.promote("usertable:1")
        epoch1 = router.epoch
        assert epoch1 > epoch0
        assert router.promote("usertable:1") == first
        assert router.epoch == epoch1  # idempotent: no new epoch
        router.demote("usertable:1")
        assert router.epoch > epoch1
        assert not router.is_replicated("usertable:1")
        router.demote("usertable:1")  # idempotent demote

    def test_demote_invalidates_nonprimary_copies(self):
        cluster, _ = make_cluster()
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        key = "usertable:2"
        replicas = router.promote(key)
        for sid in replicas:
            cluster.server(sid).set(key, "copy")
        router.demote(key)
        primary = replicas[0]
        assert cluster.server(primary).get(key) == "copy"
        for sid in replicas[1:]:
            assert cluster.server(sid).get(key) is MISSING

    def test_demote_with_dead_replica_quarantines_it(self):
        cluster, _ = make_cluster()
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        key = "usertable:3"
        replicas = router.promote(key)
        victim = replicas[1]
        cluster.server(victim).set(key, "stale")
        cluster.kill_server(victim)
        router.demote(key)
        assert victim in router.pending_demotions(key)
        assert router.stats.deferred_demotions >= 1
        # the quarantined shard stays in write fan-out until the delete lands
        assert victim in router.write_targets(key)
        # cold revival wipes the shard and lifts the quarantine
        cluster.revive_server(victim, cold=True)
        assert not router.pending_demotions(key)
        assert router.write_targets(key) == ()

    def test_repromote_excludes_quarantined_shard_from_reads(self):
        cluster, _ = make_cluster()
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        key = "usertable:4"
        replicas = router.promote(key)
        victim = replicas[1]
        cluster.server(victim).set(key, "stale")
        cluster.kill_server(victim)
        router.demote(key)
        assert victim in router.pending_demotions(key)
        again = router.promote(key)
        assert again == replicas
        entry = router.routes[key]
        assert victim in entry.quarantine
        assert victim not in entry.eligible


class TestRefresh:
    def test_refresh_promotes_tracker_heavy_hitters(self):
        cluster, _ = make_cluster()
        storage = cluster.storage
        for i in range(64):
            storage.set(f"usertable:{i}", i)
        router = HotKeyRouter(
            cluster, ReplicationConfig(degree=3, min_share=0.3, top_n=8)
        )
        clients = [
            make_client(
                cluster, router, seed=i,
                policy=CoTCache(capacity=4, tracker_capacity=32),
            )
            for i in range(2)
        ]
        hot = "usertable:0"
        for _ in range(200):
            for c in clients:
                c.get(hot)
                c.policy.invalidate(hot)  # keep it missing locally
        for i in range(1, 32):
            clients[0].get(f"usertable:{i}")
        promoted, demoted = router.refresh(clients)
        assert hot in promoted
        assert router.is_replicated(hot)
        assert demoted == ()

    def test_refresh_demotes_cooled_keys(self):
        cluster, _ = make_cluster()
        router = HotKeyRouter(cluster, ReplicationConfig(min_share=0.3))
        router.promote("usertable:99")
        clients = [
            make_client(
                cluster, router, seed=7,
                policy=CoTCache(capacity=4, tracker_capacity=32),
            )
        ]
        # the tracker reports entirely different keys; the stale promotion
        # has zero share and falls below the hysteresis floor
        for _ in range(50):
            clients[0].get("usertable:1")
        promoted, demoted = router.refresh(clients)
        assert "usertable:99" in demoted
        assert not router.is_replicated("usertable:99")

    def test_tracker_report_empty_for_untracked_policies(self):
        assert tracker_report(LRUCache(4), 8) == []

    def test_refresh_respects_max_keys(self):
        cluster, _ = make_cluster()
        router = HotKeyRouter(
            cluster,
            ReplicationConfig(min_share=0.01, max_keys=2, top_n=16),
        )
        client = make_client(
            cluster, router, policy=CoTCache(capacity=4, tracker_capacity=32)
        )
        for i in range(4):
            for _ in range(25):
                client.get(f"usertable:{i}")
                client.policy.invalidate(f"usertable:{i}")
        router.refresh([client])
        assert len(router) <= 2

    def test_incumbent_above_floor_outside_rank_window_is_kept(self):
        # Hysteresis must apply over the full ranked list: an incumbent
        # whose share is above the floor but ranks just outside the top
        # max_keys would otherwise flap promote/demote every epoch.
        cluster, _ = make_cluster()
        router = HotKeyRouter(
            cluster, ReplicationConfig(min_share=0.2, max_keys=2, top_n=16)
        )
        router.promote("usertable:C")
        # total=95: threshold=19, floor=9.5; C ranks 3rd with weight 15
        report = StubTrackerPolicy(
            [("usertable:A", 50.0), ("usertable:B", 30.0), ("usertable:C", 15.0)]
        )
        promoted, demoted = router.refresh([report])
        assert "usertable:C" not in demoted
        assert router.is_replicated("usertable:C")
        assert "usertable:A" in promoted
        # the cap still binds: C holds a slot, so only one promotion fits
        assert not router.is_replicated("usertable:B")
        assert len(router) == 2

    def test_max_keys_cap_demotes_coolest_incumbents(self):
        cluster, _ = make_cluster()
        router = HotKeyRouter(
            cluster, ReplicationConfig(min_share=0.2, max_keys=2, top_n=16)
        )
        for name in ("A", "B", "C"):
            router.promote(f"usertable:{name}")
        report = StubTrackerPolicy(
            [("usertable:A", 50.0), ("usertable:B", 30.0), ("usertable:C", 15.0)]
        )
        promoted, demoted = router.refresh([report])
        assert promoted == ()
        assert demoted == ("usertable:C",)
        assert router.is_replicated("usertable:A")
        assert router.is_replicated("usertable:B")


class TestTwoChoicesRouting:
    def test_replicated_reads_spread_across_replicas(self):
        cluster, _ = make_cluster()
        for i in range(8):
            cluster.storage.set(f"usertable:{i}", i)
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        client = make_client(cluster, router, policy=LRUCache(2))
        key = "usertable:0"
        replicas = router.promote(key)
        for _ in range(600):
            assert client.get(key) == 0
            client.policy.invalidate(key)  # force the backend path
        loads = client.monitor.total_loads()
        for sid in replicas:
            assert loads.get(sid, 0) > 100  # all three carry the key
        assert router.stats.replicated_reads == 600
        assert router.stats.two_choice_reads == 600

    def test_open_breaker_shard_never_chosen(self):
        cluster, _ = make_cluster()
        cluster.storage.set("usertable:0", "v")
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        client = make_client(cluster, router, threshold=2, cooldown=1e9)
        key = "usertable:0"
        replicas = router.promote(key)
        victim = replicas[1]
        cluster.kill_server(victim)
        # drive until the victim's breaker trips (sampling is randomized)
        for _ in range(100):
            client.get(key)
            client.policy.invalidate(key)
        assert client.guard.state(victim) is BreakerState.OPEN
        before = client.monitor.total_loads().get(victim, 0)
        degraded_before = client.monitor.degraded_reads()
        for _ in range(200):
            assert client.get(key) == "v"
            client.policy.invalidate(key)
        assert client.monitor.total_loads().get(victim, 0) == before
        # the surviving replicas serve everything: no degraded reads
        assert client.monitor.degraded_reads() == degraded_before
        assert router.stats.primary_fallbacks == 0

    def test_all_replicas_down_degrades_to_storage(self):
        cluster, _ = make_cluster(n=3)
        cluster.storage.set("usertable:0", "auth")
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        client = make_client(cluster, router, threshold=1, cooldown=1e9)
        key = "usertable:0"
        for sid in router.promote(key):
            cluster.kill_server(sid)
        values = {client.get(key) for _ in range(20)}
        for _ in range(20):
            client.policy.invalidate(key)
            values.add(client.get(key))
        assert values == {"auth"}
        assert router.stats.primary_fallbacks > 0

    def test_single_choice_config_still_routes(self):
        cluster, _ = make_cluster()
        cluster.storage.set("usertable:0", 0)
        router = HotKeyRouter(
            cluster, ReplicationConfig(degree=2, choices=1)
        )
        client = make_client(cluster, router, policy=LRUCache(2))
        router.promote("usertable:0")
        for _ in range(50):
            client.get("usertable:0")
            client.policy.invalidate("usertable:0")
        assert router.stats.replicated_reads == 50
        assert router.stats.two_choice_reads == 0


class TestWriteFanout:
    def test_write_invalidates_every_replica(self):
        cluster, _ = make_cluster()
        cluster.storage.set("usertable:0", "v1")
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        client = make_client(cluster, router, policy=LRUCache(4))
        key = "usertable:0"
        replicas = router.promote(key)
        for sid in replicas:
            cluster.server(sid).set(key, "v1")
        client.set(key, "v2")
        for sid in replicas:
            assert cluster.server(sid).get(key) is MISSING
        assert router.stats.replica_invalidations >= 3

    def test_failed_fanout_quarantines_and_recovers(self):
        cluster, _ = make_cluster()
        cluster.storage.set("usertable:0", "v1")
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        client = make_client(cluster, router, threshold=1, cooldown=1e9)
        key = "usertable:0"
        replicas = router.promote(key)
        victim = replicas[1]
        cluster.server(victim).set(key, "v1")
        cluster.kill_server(victim)
        client.set(key, "v2")
        entry = router.routes[key]
        assert victim in entry.quarantine
        assert victim not in entry.eligible
        assert router.stats.failed_replica_invalidations >= 1
        # reads keep returning the new value (victim is out of the choice set)
        for _ in range(50):
            assert client.get(key) == "v2"
            client.policy.invalidate(key)
        # cold revival wipes the stale copy and restores eligibility
        cluster.revive_server(victim, cold=True)
        entry = router.routes[key]
        assert victim not in entry.quarantine
        assert victim in entry.eligible
        assert cluster.server(victim).get(key) is MISSING

    def test_write_after_failed_demote_invalidates_primary(self):
        # Regression: a demoted key with an unresolved demotion-
        # invalidation reads through the classic path to the primary, so
        # the primary must be in the write-target set — otherwise
        # promote -> kill replica -> demote -> get -> set -> get serves
        # the pre-write value from the primary while storage holds the
        # new one.
        cluster, _ = make_cluster()
        cluster.storage.set("usertable:0", "v1")
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        client = make_client(cluster, router, threshold=1, cooldown=1e9)
        key = "usertable:0"
        replicas = router.promote(key)
        primary, victim = replicas[0], replicas[1]
        cluster.server(victim).set(key, "v1")
        cluster.kill_server(victim)
        router.demote(key)
        assert victim in router.pending_demotions(key)
        assert primary in router.write_targets(key)
        # classic-path read caches v1 on the primary
        assert client.get(key) == "v1"
        client.policy.invalidate(key)
        assert cluster.server(primary).get(key) == "v1"
        client.set(key, "v2")
        assert cluster.server(primary).get(key) is MISSING
        assert client.get(key) == "v2"

    def test_get_many_routes_replicated_keys_through_choice_set(self):
        cluster, _ = make_cluster()
        for i in range(16):
            cluster.storage.set(f"usertable:{i}", i)
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        client = make_client(cluster, router, policy=LRUCache(2))
        key = "usertable:0"
        replicas = router.promote(key)
        for _ in range(300):
            batch = client.get_many([key, "usertable:5", "usertable:9"])
            assert batch[key] == 0
            client.policy.invalidate(key)
        loads = client.monitor.total_loads()
        assert all(loads.get(sid, 0) > 50 for sid in replicas)


class TestListenerHygiene:
    def test_attach_router_registers_revival_hook_once(self):
        cluster, _ = make_cluster()
        router = HotKeyRouter(cluster)
        client = make_client(cluster)
        client.attach_router(router, seed=1)
        client.attach_router(router, seed=2)  # re-attach: no duplicate
        hook = client.monitor.reset_server_window
        assert cluster.cold_revival_listeners.count(hook) == 1

    def test_detach_router_removes_hook_and_restores_classic_path(self):
        cluster, _ = make_cluster()
        router = HotKeyRouter(cluster)
        client = make_client(cluster, router)
        client.detach_router()
        assert client.router is None
        hook = client.monitor.reset_server_window
        assert hook not in cluster.cold_revival_listeners
        client.detach_router()  # idempotent
        cluster.storage.set("usertable:0", "v")
        assert client.get("usertable:0") == "v"  # classic path works

    def test_router_detach_removes_cold_revival_listener(self):
        cluster, _ = make_cluster()
        before = len(cluster.cold_revival_listeners)
        router = HotKeyRouter(cluster)
        assert len(cluster.cold_revival_listeners) == before + 1
        router.detach()
        assert len(cluster.cold_revival_listeners) == before
        router.detach()  # idempotent

    def test_router_detach_removes_removal_listener(self):
        """The router registers a scale-in hook too; detach must remove
        both, or a dead router keeps revalidating against the cluster."""
        cluster, _ = make_cluster()
        before = len(cluster.removal_listeners)
        router = HotKeyRouter(cluster)
        assert len(cluster.removal_listeners) == before + 1
        router.detach()
        assert len(cluster.removal_listeners) == before
        router.detach()  # idempotent


class TestScaleInSafety:
    def test_remove_replica_shard_reroutes_reads_immediately(self):
        """Regression: scaling in a shard that served in a promoted
        key's replica set left the stale placement in ``routes`` until
        the next refresh — any read that sampled the departed shard
        crashed on the cluster lookup. The removal listener re-places
        affected replica sets synchronously."""
        cluster, _ = make_cluster()
        router = HotKeyRouter(cluster, ReplicationConfig(degree=2))
        client = make_client(cluster, router, policy=LRUCache(2))
        key = "usertable:0"
        cluster.storage.set(key, "v")
        replicas = router.promote(key)
        victim = replicas[1]  # non-primary replica
        cluster.remove_server(victim)
        entry = router.routes[key]
        assert victim not in entry.replicas
        assert all(sid in cluster.server_ids for sid in entry.replicas)
        for _ in range(20):  # two-choices sampling must never crash
            assert client.get(key) == "v"
            client.policy.invalidate(key)

    def test_remove_clears_pending_and_quarantine_references(self):
        """A quarantined (key, shard) pair is moot once the shard leaves
        the cluster: its copies left with it."""
        cluster, _ = make_cluster()
        cluster.storage.set("usertable:0", "v1")
        router = HotKeyRouter(cluster, ReplicationConfig(degree=3))
        client = make_client(cluster, router, threshold=1, cooldown=1e9)
        key = "usertable:0"
        replicas = router.promote(key)
        victim = replicas[1]
        cluster.server(victim).set(key, "v1")
        cluster.kill_server(victim)
        client.set(key, "v2")  # failed fan-out quarantines the victim
        assert victim in router.routes[key].quarantine
        cluster.remove_server(victim)
        entry = router.routes[key]
        assert victim not in entry.replicas
        assert victim not in entry.quarantine
        assert victim not in router.pending_demotions(key)
        live = set(cluster.server_ids)
        for pending in router.pending_snapshot().values():
            assert pending <= live
        # Reads keep serving the committed value through the new set.
        for _ in range(10):
            assert client.get(key) == "v2"
            client.policy.invalidate(key)


class TestEngineAxis:
    def test_replication_spec_disabled_publishes_no_tier_counters(self):
        spec = ScenarioSpec(
            scale=Scale.tiny(),
            workload=WorkloadSpec(dist="zipf-0.99"),
            policy=PolicySpec(name="lru", cache_lines=16),
            accesses=2_000,
        )
        result = ClusterRunner().run(spec)
        assert not any(
            name.startswith("replication.")
            for name in result.telemetry.counters
        )
        assert all(client.router is None for client in result.front_ends)

    def test_replication_spec_enabled_builds_shared_router(self):
        spec = ScenarioSpec(
            scale=Scale.tiny(),
            workload=WorkloadSpec(dist="zipf-1.2", read_fraction=0.8),
            policy=PolicySpec(name="cot", cache_lines=32, tracker_lines=64),
            topology=TopologySpec(
                replication=ReplicationSpec(
                    enabled=True, degree=2, min_share=0.02, refresh_every=256
                )
            ),
            accesses=4_000,
        )
        result = ClusterRunner().run(spec)
        routers = {id(client.router) for client in result.front_ends}
        assert len(routers) == 1  # one shared agreement layer
        counters = result.telemetry.counters
        assert counters["replication.refreshes"] > 0
        assert "replication.active_keys" in result.telemetry.gauges

    def test_replication_enabled_spec_not_parallelizable(self):
        base = ScenarioSpec(
            scale=Scale.tiny(),
            workload=WorkloadSpec(dist="zipf-0.99"),
            policy=PolicySpec(name="lru", cache_lines=16),
        )
        assert cluster_spec_parallelizable(base)
        replicated = ScenarioSpec(
            scale=Scale.tiny(),
            workload=WorkloadSpec(dist="zipf-0.99"),
            policy=PolicySpec(name="lru", cache_lines=16),
            topology=TopologySpec(replication=ReplicationSpec(enabled=True)),
        )
        assert not cluster_spec_parallelizable(replicated)


class ReplicationMachine(RuleBasedStateMachine):
    """Zero stale reads under promote/demote/write/kill/revive interleavings.

    One front end over a 4-shard faulty cluster with a replication router.
    A plain dict mirrors every write (storage is authoritative, so the
    dict IS the ground truth); every ``get`` must return exactly the
    mirrored value no matter how promotions, demotions, replicated write
    fan-outs, shard kills and cold revivals interleave.
    """

    KEYS = [f"usertable:{i}" for i in range(6)]

    def __init__(self) -> None:
        super().__init__()
        self.cluster, self.faults = make_cluster(n=4, seed=7)
        self.router = HotKeyRouter(
            self.cluster, ReplicationConfig(degree=3)
        )
        self.client = make_client(
            self.cluster, self.router, seed=11, policy=LRUCache(4),
            threshold=2, cooldown=64.0,
        )
        self.model: dict[str, object] = {}
        self.version = 0
        self.down: set[str] = set()
        for key in self.KEYS:
            self.model[key] = ("v", 0)
            self.cluster.storage.set(key, ("v", 0))

    @rule(key=st.sampled_from(KEYS))
    def do_get(self, key: str) -> None:
        assert self.client.get(key) == self.model[key]

    @rule(key=st.sampled_from(KEYS))
    def do_set(self, key: str) -> None:
        self.version += 1
        value = ("v", self.version)
        self.client.set(key, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def do_promote(self, key: str) -> None:
        self.router.promote(key)

    @rule(key=st.sampled_from(KEYS))
    def do_demote(self, key: str) -> None:
        self.router.demote(key)

    @rule(shard=st.integers(0, 3))
    def do_kill(self, shard: int) -> None:
        sid = f"cache-{shard}"
        if sid not in self.down:
            self.cluster.kill_server(sid)
            self.down.add(sid)

    @rule(shard=st.integers(0, 3))
    def do_revive_cold(self, shard: int) -> None:
        sid = f"cache-{shard}"
        if sid in self.down:
            self.cluster.revive_server(sid, cold=True)
            self.down.remove(sid)


ReplicationMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestReplicationStateful = ReplicationMachine.TestCase
