"""Tests for tail-latency reporting in the end-to-end simulation.

The paper motivates CoT with tail-latency damage from load-imbalance;
the simulator therefore reports p50/p99 through the telemetry bus, and
these tests pin that the tail contracts when a front-end cache removes
the hot-shard bottleneck.
"""

from __future__ import annotations

from repro.engine import (
    PolicySpec,
    Scale,
    ScenarioSpec,
    SimRunner,
    TopologySpec,
    WorkloadSpec,
)
from repro.policies.lru import LRUCache
from repro.policies.nullcache import NullCache
from repro.workloads.mixer import OperationMixer
from repro.workloads.zipfian import ZipfianGenerator


def build(policy_factory, clients=6, reqs=800):
    def mixer(i):
        return OperationMixer(
            ZipfianGenerator(2_000, theta=1.3, seed=40 + i), seed=90 + i
        )

    spec = ScenarioSpec(
        scale=Scale.tiny(),
        workload=WorkloadSpec(mixer_factory=mixer),
        policy=PolicySpec(factory=policy_factory),
        topology=TopologySpec(num_servers=4, num_clients=clients),
        requests_per_client=reqs,
    )
    return SimRunner().run(spec)


class TestTailLatency:
    def test_percentiles_ordered(self):
        telemetry = build(lambda i: NullCache()).telemetry
        assert 0 < telemetry.p50_latency <= telemetry.p99_latency
        assert telemetry.p50_latency <= telemetry.mean_latency * 3

    def test_cache_contracts_the_tail(self):
        bare = build(lambda i: NullCache()).telemetry
        cached = build(lambda i: LRUCache(64)).telemetry
        # The tail contracts dramatically: the cached p99 beats even the
        # bare *median*, because the hot-shard queue (a tail phenomenon)
        # is what the front-end cache removes.
        assert cached.p99_latency < bare.p99_latency
        assert cached.p99_latency < bare.p50_latency * 2

    def test_per_client_recorders_populated(self):
        result = build(lambda i: NullCache(), clients=2, reqs=100)
        for client in result.sim_clients:
            assert client.latency_recorder.count == 100
            assert client.latency_recorder.mean > 0
        assert result.telemetry.total_requests == 200
