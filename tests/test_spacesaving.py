"""Tests for the classic space-saving sketch, including its guarantees."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spacesaving import SpaceSaving
from repro.errors import ConfigurationError


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            SpaceSaving(0)

    def test_offer_below_capacity(self):
        sketch: SpaceSaving[str] = SpaceSaving(4)
        assert sketch.offer("a") == 1.0
        assert sketch.offer("a") == 2.0
        assert sketch.offer("b") == 1.0
        assert len(sketch) == 2
        assert sketch.count_of("a") == 2.0
        assert sketch.error_of("a") == 0.0

    def test_offer_zero_weight_raises(self):
        with pytest.raises(ValueError):
            SpaceSaving(2).offer("a", 0.0)

    def test_eviction_inherits_count(self):
        sketch: SpaceSaving[str] = SpaceSaving(2)
        sketch.offer("a")
        sketch.offer("a")
        sketch.offer("b")
        # "c" evicts "b" (min count 1) and inherits its count.
        assert sketch.offer("c") == 2.0
        assert "b" not in sketch
        assert sketch.error_of("c") == 1.0
        assert sketch.entries().__class__  # iterator exists

    def test_min_count_not_full(self):
        sketch: SpaceSaving[str] = SpaceSaving(3)
        sketch.offer("a")
        assert sketch.min_count() == 0.0

    def test_min_count_full(self):
        sketch: SpaceSaving[str] = SpaceSaving(2)
        sketch.offer("a")
        sketch.offer("a")
        sketch.offer("b")
        assert sketch.min_count() == 1.0

    def test_top_order(self):
        sketch: SpaceSaving[str] = SpaceSaving(4)
        sketch.offer_all(["a"] * 5 + ["b"] * 3 + ["c"] * 1)
        top = sketch.top(2)
        assert [t.key for t in top] == ["a", "b"]
        assert top[0].count == 5.0
        assert top[0].guaranteed_count == 5.0

    def test_frequent_validation(self):
        sketch: SpaceSaving[str] = SpaceSaving(2)
        with pytest.raises(ValueError):
            sketch.frequent(0.0)
        with pytest.raises(ValueError):
            sketch.frequent(1.0)

    def test_frequent_query(self):
        sketch: SpaceSaving[str] = SpaceSaving(8)
        sketch.offer_all(["hot"] * 60 + ["warm"] * 30 + list("0123456789"))
        keys = {e.key for e in sketch.frequent(0.5)}
        assert keys == {"hot"}
        keys = {e.key for e in sketch.frequent(0.25)}
        assert keys == {"hot", "warm"}

    def test_clear(self):
        sketch: SpaceSaving[str] = SpaceSaving(2)
        sketch.offer("a")
        sketch.clear()
        assert len(sketch) == 0
        assert sketch.stream_length == 0.0

    def test_weighted_offers(self):
        sketch: SpaceSaving[str] = SpaceSaving(2)
        sketch.offer("a", 5.0)
        assert sketch.count_of("a") == 5.0
        assert sketch.stream_length == 5.0


class TestGuarantees:
    """The textbook space-saving guarantees, verified by brute force."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=400),
        st.integers(2, 12),
    )
    def test_overestimate_never_underestimates(self, stream, capacity):
        sketch: SpaceSaving[int] = SpaceSaving(capacity)
        sketch.offer_all(stream)
        truth = Counter(stream)
        for entry in sketch.entries():
            assert entry.count >= truth[entry.key]
            assert entry.count - entry.error <= truth[entry.key]

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=400),
        st.integers(2, 12),
    )
    def test_error_bounded_by_n_over_m(self, stream, capacity):
        sketch: SpaceSaving[int] = SpaceSaving(capacity)
        sketch.offer_all(stream)
        bound = len(stream) / capacity
        for entry in sketch.entries():
            assert entry.error <= bound + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 20), min_size=10, max_size=400),
        st.integers(2, 12),
    )
    def test_heavy_keys_always_monitored(self, stream, capacity):
        """Any key with frequency > N/m must be in the sketch."""
        sketch: SpaceSaving[int] = SpaceSaving(capacity)
        sketch.offer_all(stream)
        truth = Counter(stream)
        threshold = len(stream) / capacity
        for key, count in truth.items():
            if count > threshold:
                assert key in sketch

    def test_skewed_stream_top_k_is_exact(self):
        """On a strongly skewed stream the sketch's top-k is the true top-k."""
        stream = []
        for rank in range(20):
            stream.extend([rank] * (2 ** (12 - rank) if rank < 12 else 1))
        sketch: SpaceSaving[int] = SpaceSaving(16)
        sketch.offer_all(stream)
        top = [entry.key for entry in sketch.top(5)]
        assert top == [0, 1, 2, 3, 4]
