"""Cross-module integration tests: the paper's claims at test scale."""

from __future__ import annotations

import pytest

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.core.cache import CoTCache
from repro.metrics.imbalance import load_imbalance
from repro.policies.base import MISSING
from repro.policies.registry import make_policy
from repro.workloads.base import format_key
from repro.workloads.mixer import OperationMixer
from repro.workloads.zipfian import ZipfianGenerator


def run_clients(cluster, policies, dist_theta, accesses_per_client, key_space, seed=0):
    clients = [
        FrontEndClient(cluster, policy, client_id=f"front-{i}")
        for i, policy in enumerate(policies)
    ]
    for i, client in enumerate(clients):
        generator = ZipfianGenerator(key_space, theta=dist_theta, seed=seed + i)
        for key in generator.keys(accesses_per_client):
            client.get(format_key(key))
    return clients


class TestPaperClaims:
    """Small-scale versions of the headline claims."""

    def test_small_front_end_cache_fixes_imbalance(self):
        """Fan et al.'s premise: a small front-end cache removes most of
        the back-end load-imbalance (Figure 3's mechanism)."""
        key_space, accesses = 10_000, 30_000
        bare = CacheCluster(num_servers=4, virtual_nodes=512, value_size=1)
        run_clients(bare, [make_policy("none", 0) for _ in range(2)],
                    1.5, accesses // 2, key_space)
        cached = CacheCluster(num_servers=4, virtual_nodes=512, value_size=1)
        run_clients(
            cached,
            [CoTCache(64, tracker_capacity=256) for _ in range(2)],
            1.5,
            accesses // 2,
            key_space,
        )
        assert load_imbalance(bare.loads()) > 2 * load_imbalance(cached.loads())

    def test_cot_needs_fewer_lines_than_lru_for_balance(self):
        """Table 2's mechanism at small scale: at equal (small) size, CoT
        yields lower back-end imbalance than LRU."""
        key_space, accesses, lines = 10_000, 40_000, 16
        results = {}
        for name in ("lru", "cot"):
            cluster = CacheCluster(num_servers=4, virtual_nodes=512, value_size=1)
            run_clients(
                cluster,
                [make_policy(name, lines, tracker_capacity=8 * lines)
                 for _ in range(2)],
                1.2,
                accesses // 2,
                key_space,
            )
            results[name] = load_imbalance(cluster.loads())
        assert results["cot"] < results["lru"]

    def test_cache_hierarchy_consistency_under_writes(self):
        """After interleaved reads and writes through two front ends, a
        read must always observe the latest written value."""
        cluster = CacheCluster(num_servers=4, virtual_nodes=512, value_size=1)
        a = FrontEndClient(cluster, CoTCache(8, tracker_capacity=32), client_id="a")
        b = FrontEndClient(cluster, CoTCache(8, tracker_capacity=32), client_id="b")
        key = format_key(42)
        a.get(key)
        b.get(key)
        a.set(key, "from-a")
        # B's local copy was NOT invalidated (no cross-client invalidation
        # in the client-driven protocol) — but B's *next* miss path after
        # its own update sees the new value; B writing invalidates B.
        b.set(key, "from-b")
        assert a.get(key) == "from-b"
        assert b.get(key) == "from-b"

    def test_mixed_workload_runs_clean(self):
        """Tao-ratio mixed workload through the full stack."""
        cluster = CacheCluster(num_servers=4, virtual_nodes=512, value_size=1)
        client = FrontEndClient(cluster, CoTCache(32, tracker_capacity=128))
        mixer = OperationMixer(
            ZipfianGenerator(5_000, theta=1.2, seed=3),
            read_fraction=0.95,
            seed=4,
        )
        for request in mixer.requests(20_000):
            client.execute(request)
        client.policy.check_invariants()
        assert client.policy.stats.hit_rate > 0.2
        assert cluster.storage.stats.writes > 0

    def test_all_policies_agree_on_backend_content(self):
        """Different front-end policies must never corrupt the data: the
        value returned equals what storage holds."""
        cluster = CacheCluster(num_servers=4, virtual_nodes=512, value_size=1)
        policies = [
            make_policy(name, 8, tracker_capacity=32)
            for name in ("lru", "lfu", "arc", "lru2", "cot")
        ]
        clients = [
            FrontEndClient(cluster, policy, client_id=str(i))
            for i, policy in enumerate(policies)
        ]
        key = format_key(7)
        for client in clients:
            assert client.get(key) == cluster.storage.get(key)
        clients[0].set(key, "v2")
        for client in clients[1:]:
            client.policy.invalidate(key)  # simulate invalidation fan-out
        for client in clients:
            assert client.get(key) == "v2"


class TestEndToEndElasticity:
    def test_two_front_ends_converge_independently(self):
        """Decentralization: front ends serving different skews settle on
        different cache sizes with no coordination."""
        from repro.core.elastic import ElasticCoTClient
        from repro.workloads.uniform import UniformGenerator

        cluster = CacheCluster(num_servers=4, virtual_nodes=512, value_size=1)
        hot_client = ElasticCoTClient(
            cluster, target_imbalance=1.1, base_epoch=500, client_id="hot"
        )
        cold_client = ElasticCoTClient(
            cluster, target_imbalance=1.1, base_epoch=500, client_id="cold"
        )
        hot_gen = ZipfianGenerator(5_000, theta=1.4, seed=11)
        cold_gen = UniformGenerator(5_000, seed=12)
        for _ in range(60_000):
            hot_client.get(format_key(hot_gen.next_key()))
            cold_client.get(format_key(cold_gen.next_key()))
        hot_cache, _ = hot_client.converged_sizes()
        cold_cache, _ = cold_client.converged_sizes()
        assert hot_cache > cold_cache
