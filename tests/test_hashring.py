"""Tests for the consistent hash ring."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.hashring import ConsistentHashRing
from repro.errors import ClusterError, ConfigurationError
from repro.workloads.base import format_key

SERVERS = [f"s{i}" for i in range(8)]


class TestBasics:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(virtual_nodes=0)

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(ClusterError):
            ConsistentHashRing().server_for("k")

    def test_membership(self):
        ring = ConsistentHashRing(SERVERS)
        assert len(ring) == 8
        assert "s0" in ring and "missing" not in ring
        assert ring.servers == frozenset(SERVERS)

    def test_duplicate_add_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ClusterError):
            ring.add_server("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ClusterError):
            ConsistentHashRing(["a"]).remove_server("b")

    def test_deterministic_mapping(self):
        a = ConsistentHashRing(SERVERS)
        b = ConsistentHashRing(SERVERS)
        keys = [format_key(i) for i in range(500)]
        assert [a.server_for(k) for k in keys] == [b.server_for(k) for k in keys]

    def test_all_servers_receive_keys(self):
        ring = ConsistentHashRing(SERVERS, virtual_nodes=160)
        keys = [format_key(i) for i in range(5000)]
        assignment = ring.assignment(keys)
        assert all(len(bucket) > 0 for bucket in assignment.values())

    def test_key_count_balance_improves_with_vnodes(self):
        keys = [format_key(i) for i in range(20_000)]
        coarse = ConsistentHashRing(SERVERS, virtual_nodes=8)
        fine = ConsistentHashRing(SERVERS, virtual_nodes=2048)
        assert fine.key_count_balance(keys) < coarse.key_count_balance(keys)

    def test_fine_ring_near_even(self):
        keys = [format_key(i) for i in range(50_000)]
        ring = ConsistentHashRing(SERVERS, virtual_nodes=8192)
        assert ring.key_count_balance(keys) < 1.1


class TestChurn:
    def test_remove_only_moves_removed_servers_keys(self):
        """Consistent hashing's minimal-churn property: removing a server
        must not remap keys owned by other servers."""
        ring = ConsistentHashRing(SERVERS)
        keys = [format_key(i) for i in range(3000)]
        before = {k: ring.server_for(k) for k in keys}
        ring.remove_server("s3")
        for key, owner in before.items():
            if owner != "s3":
                assert ring.server_for(key) == owner
            else:
                assert ring.server_for(key) != "s3"

    def test_add_only_steals_keys(self):
        """Adding a server must only move keys *to* the new server."""
        ring = ConsistentHashRing(SERVERS)
        keys = [format_key(i) for i in range(3000)]
        before = {k: ring.server_for(k) for k in keys}
        ring.add_server("s-new")
        for key, owner in before.items():
            after = ring.server_for(key)
            assert after in (owner, "s-new")

    def test_add_remove_roundtrip_restores_mapping(self):
        ring = ConsistentHashRing(SERVERS)
        keys = [format_key(i) for i in range(1000)]
        before = [ring.server_for(k) for k in keys]
        ring.add_server("temp")
        ring.remove_server("temp")
        assert [ring.server_for(k) for k in keys] == before

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.sampled_from(SERVERS), min_size=1), st.integers(0, 10_000))
    def test_lookup_total_over_any_subset(self, subset, key_id):
        ring = ConsistentHashRing(sorted(subset))
        owner = ring.server_for(format_key(key_id))
        assert owner in subset


class TestCollisionDeterminism:
    """32-bit point collisions must resolve by owner id, never by
    insertion order — ring ownership is a pure function of the member
    set (regression: ``add_server`` used to keep insertion order among
    equal points)."""

    @staticmethod
    def _colliding_hash(data: str) -> int:
        # Every virtual node ("name#replica") collides on one point;
        # keys hash elsewhere (or exactly onto the shared point).
        if "#" in data:
            return 100
        if data == "key-on-point":
            return 100
        return 50

    def test_equal_points_resolve_by_owner_id(self, monkeypatch):
        from repro.cluster import hashring as hashring_module

        monkeypatch.setattr(hashring_module, "_hash32", self._colliding_hash)
        forward = ConsistentHashRing(["alpha", "beta"], virtual_nodes=4)
        reverse = ConsistentHashRing(["beta", "alpha"], virtual_nodes=4)
        # Both orders agree, and the smallest owner id wins the collision.
        assert forward.server_for("some-key") == "alpha"
        assert reverse.server_for("some-key") == "alpha"

    def test_key_hash_equal_to_point_owns_at_or_after(self, monkeypatch):
        from repro.cluster import hashring as hashring_module

        monkeypatch.setattr(hashring_module, "_hash32", self._colliding_hash)
        ring = ConsistentHashRing(["beta", "alpha"], virtual_nodes=2)
        # The key lands exactly on the shared point: "at or after" means
        # the point itself serves it, smallest owner first.
        assert ring.server_for("key-on-point") == "alpha"

    def test_churned_ring_matches_fresh_ring(self):
        """A ring that saw arbitrary add/remove history must agree with a
        freshly built ring on every key."""
        churned = ConsistentHashRing(["s5", "s2"], virtual_nodes=64)
        churned.add_server("temp-a")
        churned.add_server("s0")
        churned.add_server("temp-b")
        churned.remove_server("temp-a")
        churned.add_server("s7")
        churned.remove_server("temp-b")
        fresh = ConsistentHashRing(["s0", "s2", "s5", "s7"], virtual_nodes=64)
        keys = [format_key(i) for i in range(5_000)]
        assert [churned.server_for(k) for k in keys] == [
            fresh.server_for(k) for k in keys
        ]

    def test_build_order_never_matters(self):
        import itertools

        keys = [format_key(i) for i in range(500)]
        members = ["s0", "s1", "s2"]
        mappings = []
        for order in itertools.permutations(members):
            ring = ConsistentHashRing(order, virtual_nodes=32)
            mappings.append(tuple(ring.server_for(k) for k in keys))
        assert len(set(mappings)) == 1


def naive_replicas(ring: ConsistentHashRing, key, r: int) -> tuple[str, ...]:
    """Reference implementation: per-call ring walk, no successor table."""
    import bisect

    from repro.cluster.hashring import _hash32

    points, owners = ring._points, ring._owners
    idx = bisect.bisect_left(points, _hash32(str(key)))
    seen: list[str] = []
    for step in range(len(points)):
        owner = owners[(idx + step) % len(points)]
        if owner not in seen:
            seen.append(owner)
            if len(seen) == r:
                break
    return tuple(seen)


class TestReplicaLookup:
    """``lookup_replicas`` — the hot-key tier's placement primitive."""

    def test_validation(self):
        ring = ConsistentHashRing(SERVERS)
        with pytest.raises(ConfigurationError):
            ring.lookup_replicas("k", 0)
        with pytest.raises(ClusterError):
            ConsistentHashRing().lookup_replicas("k", 2)

    def test_primary_first_matches_server_for(self):
        ring = ConsistentHashRing(SERVERS)
        for i in range(2000):
            key = format_key(i)
            assert ring.lookup_replicas(key, 3)[0] == ring.server_for(key)

    def test_owners_always_distinct(self):
        ring = ConsistentHashRing(SERVERS, virtual_nodes=64)
        for i in range(2000):
            replicas = ring.lookup_replicas(format_key(i), 4)
            assert len(replicas) == 4
            assert len(set(replicas)) == 4

    def test_r_capped_at_membership_never_padded(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        replicas = ring.lookup_replicas("k", 10)
        assert sorted(replicas) == ["a", "b", "c"]
        assert ring.lookup_replicas("k", 1) == (ring.server_for("k"),)

    def test_table_matches_naive_walk(self):
        ring = ConsistentHashRing(SERVERS, virtual_nodes=128)
        for i in range(1000):
            key = format_key(i)
            for r in (1, 2, 3, 8):
                assert ring.lookup_replicas(key, r) == naive_replicas(
                    ring, key, r
                )

    def test_distinct_owners_on_collision_heavy_ring(self, monkeypatch):
        """Many virtual points share one 32-bit hash: the walk must still
        deliver r *distinct* owners, never two copies on one shard."""
        from repro.cluster import hashring as hashring_module

        monkeypatch.setattr(
            hashring_module, "_hash32", lambda data: (len(data) * 7) % 13
        )
        ring = ConsistentHashRing(SERVERS, virtual_nodes=16)
        for i in range(200):
            key = format_key(i)
            replicas = ring.lookup_replicas(key, 3)
            assert len(set(replicas)) == 3
            assert replicas == naive_replicas(ring, key, 3)
            assert replicas[0] == ring.server_for(key)

    def test_membership_change_invalidates_successor_table(self):
        churned = ConsistentHashRing(SERVERS, virtual_nodes=64)
        keys = [format_key(i) for i in range(500)]
        for key in keys:
            churned.lookup_replicas(key, 3)  # warm the r=3 table
        epoch = churned.epoch
        churned.add_server("s-new")
        churned.remove_server("s0")
        assert churned.epoch > epoch
        fresh = ConsistentHashRing(
            sorted(churned.servers), virtual_nodes=64
        )
        assert [churned.lookup_replicas(k, 3) for k in keys] == [
            fresh.lookup_replicas(k, 3) for k in keys
        ]

    @settings(max_examples=25, deadline=None)
    @given(
        st.sets(st.sampled_from(SERVERS), min_size=1),
        st.integers(0, 10_000),
        st.integers(1, 8),
    )
    def test_replica_sets_total_over_any_subset(self, subset, key_id, r):
        ring = ConsistentHashRing(sorted(subset), virtual_nodes=32)
        replicas = ring.lookup_replicas(format_key(key_id), r)
        assert len(replicas) == min(r, len(subset))
        assert len(set(replicas)) == len(replicas)
        assert set(replicas) <= subset
        assert replicas == naive_replicas(ring, format_key(key_id), r)
