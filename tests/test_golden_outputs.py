"""Golden-file regression tests for the scenario engine.

These pin the rendered smoke-scale output of three representative
experiments byte-for-byte: fig4 (policy-stream path), fig6 (simulator
path), and table2 (cluster path).  Together they cover all three
runners behind the engine, so any drift in seeding, drive order, or
rendering shows up as a diff against ``tests/golden/``.

To regenerate after an intentional change::

    PYTHONPATH=src python -m repro.experiments <id> --scale smoke

and paste the rendered tables (without the trailing timing line) into
the matching ``tests/golden/<id>.smoke.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.experiments  # noqa: F401  (imports register every experiment)
from repro.engine import Scale, get_experiment

GOLDEN_DIR = Path(__file__).parent / "golden"


def rendered_output(experiment_id: str) -> str:
    outcome = get_experiment(experiment_id).run(scale=Scale.smoke())
    results = outcome if isinstance(outcome, list) else [outcome]
    return "\n\n".join(result.render() for result in results) + "\n"


@pytest.mark.parametrize("experiment_id", ["fig4", "fig6", "table2"])
def test_smoke_output_matches_golden(experiment_id):
    golden = (GOLDEN_DIR / f"{experiment_id}.smoke.txt").read_text(
        encoding="utf-8"
    )
    assert rendered_output(experiment_id) == golden
