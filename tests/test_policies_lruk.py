"""Tests for LRU-K (LRU-2 in the paper's comparisons)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.policies.base import MISSING
from repro.policies.lruk import LRUKCache


def access(policy, key):
    value = policy.lookup(key)
    if value is MISSING:
        policy.admit(key, key)
        return False
    return True


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LRUKCache(4, k=0)
        with pytest.raises(ConfigurationError):
            LRUKCache(4, k=2, history_capacity=-1)

    def test_defaults(self):
        policy = LRUKCache(4)
        assert policy.k == 2
        assert policy.history_capacity == 0


class TestEviction:
    def test_infants_evicted_before_mature(self):
        """Keys with < k references lose to keys with k references."""
        lru2 = LRUKCache(2, k=2)
        access(lru2, "mature")
        access(lru2, "mature")   # 2 refs
        access(lru2, "infant")   # 1 ref
        access(lru2, "new")      # must evict "infant", not "mature"
        assert "mature" in lru2
        assert "infant" not in lru2

    def test_among_infants_lru_order(self):
        lru2 = LRUKCache(2, k=2)
        access(lru2, "older")
        access(lru2, "newer")
        access(lru2, "third")    # evicts "older" (least recent infant)
        assert "newer" in lru2
        assert "older" not in lru2

    def test_among_mature_min_kth_reference(self):
        lru2 = LRUKCache(2, k=2)
        access(lru2, "a")
        access(lru2, "a")        # a: refs t1,t2 -> k-dist anchor t1
        access(lru2, "b")
        access(lru2, "b")        # b: refs t3,t4 -> anchor t3
        access(lru2, "a")        # a: anchor now t2
        access(lru2, "c")        # evict min anchor: b?  a anchor=t2 < b anchor=t3
        assert "b" in lru2
        assert "a" not in lru2

    def test_capacity_respected(self):
        lru2 = LRUKCache(3, k=2, history_capacity=16)
        for i in range(50):
            access(lru2, i % 7)
        assert len(lru2) <= 3


class TestHistory:
    def test_history_retains_evicted_references(self):
        lru2 = LRUKCache(1, k=2, history_capacity=8)
        access(lru2, "a")
        access(lru2, "b")        # evicts a -> history
        assert lru2.history_size == 1
        # a re-admitted with retained refs: now has 2 refs (mature).
        access(lru2, "a")        # evicts b; a returns with history
        access(lru2, "c")        # c infant vs a mature -> evict... c not in cache yet
        # a should survive because it is mature thanks to retained history.
        assert "a" in lru2 or "c" in lru2  # exactly one cached
        assert len(lru2) == 1

    def test_history_bounded(self):
        lru2 = LRUKCache(1, k=2, history_capacity=3)
        for i in range(20):
            access(lru2, i)
        assert lru2.history_size <= 3

    def test_readmission_from_history_is_mature(self):
        lru2 = LRUKCache(2, k=2, history_capacity=8)
        access(lru2, "a")
        access(lru2, "b")
        access(lru2, "c")            # evicts "a" (oldest infant) to history
        assert "a" not in lru2
        access(lru2, "a")            # re-enters with retained refs: 2 refs
        # "a" is now mature; the remaining infant loses the next eviction.
        access(lru2, "d")
        assert "a" in lru2

    def test_zero_history_forgets(self):
        lru2 = LRUKCache(1, k=2, history_capacity=0)
        access(lru2, "a")
        access(lru2, "b")
        assert lru2.history_size == 0

    def test_invalidate_drops_value_and_history(self):
        lru2 = LRUKCache(2, k=2, history_capacity=4)
        access(lru2, "a")
        lru2.invalidate("a")
        assert "a" not in lru2
        access(lru2, "b")
        access(lru2, "c")
        access(lru2, "d")            # b or c evicted into history
        evicted = "b" if "b" not in lru2 else "c"
        lru2.invalidate(evicted)     # history entry dropped too
        assert lru2.history_size == 0

    def test_resize(self):
        lru2 = LRUKCache(4, k=2, history_capacity=8)
        for key in "abcd":
            access(lru2, key)
        lru2.resize(2)
        assert len(lru2) == 2


class TestBehaviour:
    def test_lru2_beats_lru_on_skew(self):
        """Both LRU-2 variants must clearly beat plain LRU on Zipf-like
        streams — the K-distance filter is what the paper compares."""
        from repro.policies.lru import LRUCache

        rng = random.Random(23)
        population = list(range(300))
        weights = [1.0 / (i + 1) for i in population]
        with_history = LRUKCache(8, k=2, history_capacity=128)
        without = LRUKCache(8, k=2, history_capacity=0)
        lru = LRUCache(8)
        for _ in range(20_000):
            key = rng.choices(population, weights)[0]
            for policy in (with_history, without, lru):
                if policy.lookup(key) is MISSING:
                    policy.admit(key, key)
        assert with_history.stats.hit_rate > lru.stats.hit_rate * 1.2
        assert without.stats.hit_rate > lru.stats.hit_rate * 1.2

    def test_lru1_degenerates_to_lru(self):
        """k=1 must order by plain recency."""
        lru1 = LRUKCache(2, k=1)
        access(lru1, "a")
        access(lru1, "b")
        lru1.lookup("a")
        access(lru1, "c")        # evicts b (least recent)
        assert "a" in lru1 and "b" not in lru1
