"""Tests for back-end shards, storage, load monitoring, and assembly."""

from __future__ import annotations

import pytest

from repro.cluster.backend import BackendCacheServer
from repro.cluster.cluster import CacheCluster
from repro.cluster.loadmonitor import LoadMonitor, load_imbalance
from repro.cluster.storage import PersistentStore
from repro.errors import ClusterError, ConfigurationError
from repro.policies.base import MISSING


class TestBackendServer:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackendCacheServer("s", capacity_bytes=0)

    def test_get_set_delete(self):
        server = BackendCacheServer("s", capacity_bytes=10_000, default_value_size=10)
        assert server.get("k") is MISSING
        server.set("k", "v")
        assert server.get("k") == "v"
        assert server.delete("k") is True
        assert server.delete("k") is False
        assert server.get("k") is MISSING

    def test_stats(self):
        server = BackendCacheServer("s", capacity_bytes=10_000, default_value_size=10)
        server.get("a")
        server.set("a", 1)
        server.get("a")
        assert server.stats.gets == 2
        assert server.stats.get_hits == 1
        assert server.stats.get_hit_rate == 0.5
        assert server.stats.sets == 1

    def test_byte_budget_evicts_lru(self):
        server = BackendCacheServer("s", capacity_bytes=30, default_value_size=10)
        server.set("a", 1)
        server.set("b", 2)
        server.set("c", 3)
        server.get("a")           # refresh a
        server.set("d", 4)        # evicts b (LRU)
        assert "b" not in server
        assert "a" in server and "c" in server and "d" in server
        assert server.stats.evictions == 1
        assert server.bytes_used <= 30

    def test_explicit_size_accounting(self):
        server = BackendCacheServer("s", capacity_bytes=100, default_value_size=10)
        server.set("big", 1, size=60)
        server.set("small", 2, size=10)
        assert server.bytes_used == 70
        server.set("big", 3, size=20)  # replacing updates accounting
        assert server.bytes_used == 30

    def test_oversized_value_clamped(self):
        server = BackendCacheServer("s", capacity_bytes=50, default_value_size=10)
        server.set("huge", 1, size=500)
        assert "huge" in server
        assert server.bytes_used <= 50

    def test_epoch_window(self):
        server = BackendCacheServer("s", capacity_bytes=100)
        server.get("a")
        assert server.stats.epoch_gets == 1
        server.stats.reset_epoch()
        assert server.stats.epoch_gets == 0
        assert server.stats.gets == 1

    def test_flush(self):
        server = BackendCacheServer("s", capacity_bytes=100, default_value_size=10)
        server.set("a", 1)
        server.flush()
        assert len(server) == 0
        assert server.bytes_used == 0


class TestStorage:
    def test_lazy_values(self):
        store = PersistentStore()
        value = store.get("never-written")
        assert value is not None
        assert store.stats.reads == 1

    def test_write_read(self):
        store = PersistentStore()
        store.set("k", "v")
        assert store.get("k") == "v"
        assert store.was_written("k")

    def test_delete(self):
        store = PersistentStore()
        store.set("k", "v")
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert not store.was_written("k")
        # Reads after delete regenerate a factory value.
        assert store.get("k") is not None

    def test_custom_factory(self):
        store = PersistentStore(value_factory=lambda key: f"gen-{key}")
        assert store.get("x") == "gen-x"


class TestLoadMonitor:
    def test_requires_servers(self):
        with pytest.raises(ClusterError):
            LoadMonitor([])

    def test_new_server_auto_registered(self):
        """Topology churn: lookups to servers that joined after the
        monitor was built are counted, not rejected."""
        monitor = LoadMonitor(["a"])
        monitor.record_lookup("b")
        assert monitor.total_loads() == {"a": 0, "b": 1}

    def test_counters_and_imbalance(self):
        monitor = LoadMonitor(["a", "b"])
        for _ in range(6):
            monitor.record_lookup("a")
        for _ in range(2):
            monitor.record_lookup("b")
        assert monitor.total_loads() == {"a": 6, "b": 2}
        assert monitor.imbalance() == 3.0
        assert monitor.total_lookups() == 8

    def test_epoch_window_independent(self):
        monitor = LoadMonitor(["a", "b"])
        monitor.record_lookup("a")
        monitor.reset_epoch()
        monitor.record_lookup("b")
        assert monitor.epoch_loads() == {"a": 0, "b": 1}
        assert monitor.total_loads() == {"a": 1, "b": 1}
        assert monitor.epoch_imbalance() == 1.0

    def test_reset(self):
        monitor = LoadMonitor(["a"])
        monitor.record_lookup("a")
        monitor.reset()
        assert monitor.total_lookups() == 0

    def test_forgotten_server_reincarnates_as_fresh_joiner(self):
        """Regression (scale-in churn): after ``forget_server`` a later
        lookup under the same id must register as a *mid-epoch joiner*,
        not splice onto the dead incarnation's counts — the controller
        excludes fresh joiners, so a remove→add inside one epoch cannot
        double-count."""
        monitor = LoadMonitor(["a", "b"])
        for _ in range(5):
            monitor.record_lookup("b")
        monitor.forget_server("b")
        assert "b" not in monitor.total_loads()
        assert "b" not in monitor.epoch_loads()
        monitor.record_lookup("b")
        assert "b" in monitor.epoch_new_servers()
        assert monitor.epoch_loads()["b"] == 1
        assert monitor.total_loads()["b"] == 1
        # A full epoch boundary graduates the reincarnation to a
        # first-class member, exactly like any scale-out joiner.
        monitor.reset_epoch()
        assert "b" not in monitor.epoch_new_servers()


class TestLoadImbalanceMetric:
    def test_empty(self):
        assert load_imbalance({}) == 1.0
        assert load_imbalance([]) == 1.0

    def test_all_zero(self):
        assert load_imbalance({"a": 0, "b": 0}) == 1.0

    def test_zero_floor(self):
        assert load_imbalance({"a": 10, "b": 0}) == 10.0

    def test_mapping_and_iterable(self):
        assert load_imbalance({"a": 4, "b": 2}) == 2.0
        assert load_imbalance([4, 2]) == 2.0


class TestCacheCluster:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CacheCluster(num_servers=0)

    def test_assembly(self):
        cluster = CacheCluster(num_servers=4, virtual_nodes=64)
        assert len(cluster.server_ids) == 4
        assert cluster.server("cache-0").server_id == "cache-0"
        with pytest.raises(ClusterError):
            cluster.server("nope")

    def test_routing_is_ring_consistent(self):
        cluster = CacheCluster(num_servers=4, virtual_nodes=64)
        for key in ("a", "b", "c"):
            assert cluster.server_for(key).server_id == cluster.ring.server_for(key)

    def test_loads_and_imbalance(self):
        cluster = CacheCluster(num_servers=2, virtual_nodes=64)
        server = cluster.server("cache-0")
        server.get("k")
        loads = cluster.loads()
        assert loads["cache-0"] == 1
        assert cluster.total_lookups() == 1
        assert cluster.imbalance() == 1.0  # floor keeps it finite

    def test_add_remove_server(self):
        cluster = CacheCluster(num_servers=2, virtual_nodes=64)
        added = cluster.add_server()
        assert added.server_id in cluster.server_ids
        assert added.server_id in cluster.ring
        cluster.remove_server(added.server_id)
        assert added.server_id not in cluster.server_ids

    def test_cannot_remove_last(self):
        cluster = CacheCluster(num_servers=1, virtual_nodes=64)
        with pytest.raises(ClusterError):
            cluster.remove_server("cache-0")

    def test_shard_ids_are_never_reused_after_scale_in(self):
        """Regression: ``add_server`` named shards by the current member
        count, so remove ``cache-3`` on a 4-shard cluster then add →
        ``cache-3`` again — and every per-shard structure keyed on the id
        (breakers, fault profiles, load windows) silently adopted the
        dead incarnation's state. Ids now come from a monotonic mint."""
        cluster = CacheCluster(num_servers=4, virtual_nodes=64)
        cluster.remove_server("cache-3")
        added = cluster.add_server()
        assert added.server_id == "cache-4"
        # And again, including removing an *interior* id.
        cluster.remove_server("cache-1")
        assert cluster.add_server().server_id == "cache-5"
        assert len(set(cluster.server_ids)) == len(cluster.server_ids)
        # A fresh shard starts with no cached keys.
        assert not list(added.keys())

    def test_remove_purges_rehomed_copies_from_survivors(self):
        """Regression (scale-in staleness): removing a shard hands its
        key range back to ring survivors, and a survivor may still hold
        a copy from an earlier ownership stint that missed every
        invalidation since. Those copies are purged at removal."""
        cluster = CacheCluster(num_servers=3, virtual_nodes=64)
        victim = "cache-1"
        key = next(
            f"key-{i}"
            for i in range(1000)
            if cluster.ring.server_for(f"key-{i}") == victim
        )
        survivor = next(
            sid for sid in cluster.server_ids if sid != victim
        )
        # Plant a stale copy on the survivor (as an earlier ownership
        # stint would have left behind).
        cluster.server(survivor).set(key, "stale-old-copy")
        cluster.remove_server(victim)
        assert key not in cluster.server(survivor)

    def test_remove_notifies_removal_listeners(self):
        cluster = CacheCluster(num_servers=3, virtual_nodes=64)
        seen: list[str] = []
        cluster.removal_listeners.append(seen.append)
        cluster.remove_server("cache-2")
        assert seen == ["cache-2"]

    def test_epoch_reset_propagates(self):
        cluster = CacheCluster(num_servers=2, virtual_nodes=64)
        cluster.server("cache-0").get("k")
        cluster.reset_epoch()
        assert cluster.epoch_loads() == {"cache-0": 0, "cache-1": 0}

    def test_flush(self):
        cluster = CacheCluster(num_servers=2, virtual_nodes=64)
        cluster.server("cache-0").set("k", 1)
        cluster.flush()
        assert "k" not in cluster.server("cache-0")
