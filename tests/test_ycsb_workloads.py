"""Tests for the YCSB core workloads and the multi-get path."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.core.cache import CoTCache
from repro.errors import ConfigurationError
from repro.policies.lru import LRUCache
from repro.workloads.base import format_key, parse_key
from repro.workloads.request import OpType, Request
from repro.workloads.ycsb import CoreWorkload, ScanRequest, WorkloadLetter


class TestScanRequest:
    def test_keys_expansion(self):
        scan = ScanRequest(5, 3)
        assert scan.keys() == [format_key(5), format_key(6), format_key(7)]

    def test_keys_clipped_by_caller(self):
        assert ScanRequest(8, 5).keys(key_space=10) == [
            format_key(8), format_key(9)
        ]


class TestCoreWorkload:
    def test_letter_parsing(self):
        assert CoreWorkload("a").letter is WorkloadLetter.A
        assert CoreWorkload(WorkloadLetter.C).letter is WorkloadLetter.C
        with pytest.raises(ConfigurationError):
            CoreWorkload("z")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoreWorkload("a", record_count=0)
        with pytest.raises(ConfigurationError):
            CoreWorkload("e", max_scan_length=0)
        with pytest.raises(ConfigurationError):
            CoreWorkload("a", request_distribution="pareto")

    @pytest.mark.parametrize(
        "letter,reads,updates",
        [("a", 0.50, 0.50), ("b", 0.95, 0.05), ("c", 1.00, 0.00)],
    )
    def test_mix_ratios(self, letter, reads, updates):
        workload = CoreWorkload(letter, record_count=1_000, seed=1)
        ops = Counter()
        for op in workload.operations_stream(20_000):
            assert isinstance(op, Request)
            ops[op.op] += 1
        total = sum(ops.values())
        assert ops[OpType.GET] / total == pytest.approx(reads, abs=0.02)
        assert ops[OpType.SET] / total == pytest.approx(updates, abs=0.02)

    def test_workload_d_is_latest_skewed_with_inserts(self):
        workload = CoreWorkload("d", record_count=1_000, seed=2)
        assert workload.distribution == "latest"
        initial = workload.record_count
        inserted_ids = []
        for op in workload.operations_stream(2_000):
            if isinstance(op, Request) and op.op is OpType.SET:
                inserted_ids.append(parse_key(op.key))
        assert workload.record_count > initial
        # Inserts are strictly appended at the end of the space.
        assert inserted_ids == sorted(inserted_ids)
        assert inserted_ids[0] == initial

    def test_workload_e_scans(self):
        workload = CoreWorkload("e", record_count=1_000,
                                max_scan_length=20, seed=3)
        scans = [
            op for op in workload.operations_stream(500)
            if isinstance(op, ScanRequest)
        ]
        assert len(scans) > 400  # 95% of ops
        for scan in scans:
            assert 1 <= scan.count <= 20
            assert scan.start_key_id + scan.count <= workload.record_count

    def test_workload_f_rmw_detection(self):
        workload = CoreWorkload("f", record_count=1_000, seed=4)
        op = workload.next_operation()
        assert isinstance(op, Request) and op.op is OpType.GET
        assert workload.is_rmw_read(op)
        follow_up = workload.modify(op.key)
        assert follow_up.op is OpType.SET
        # Non-F workloads never request a follow-up.
        assert not CoreWorkload("b", seed=5).is_rmw_read(op)

    def test_zipfian_growth_on_insert(self):
        workload = CoreWorkload("d", record_count=100, seed=6)
        for _ in range(500):
            workload.next_operation()
        # All drawn keys remain inside the (grown) space.
        for op in workload.operations_stream(500):
            if isinstance(op, Request):
                assert parse_key(op.key) < workload.record_count

    def test_describe(self):
        assert "ycsb-b" in CoreWorkload("b").describe()

    def test_deterministic(self):
        a = [op for op in CoreWorkload("a", seed=7).operations_stream(100)]
        b = [op for op in CoreWorkload("a", seed=7).operations_stream(100)]
        assert a == b


class TestMultiGet:
    @pytest.fixture
    def cluster(self):
        return CacheCluster(num_servers=4, virtual_nodes=256, value_size=1)

    def test_get_many_returns_all(self, cluster):
        client = FrontEndClient(cluster, LRUCache(8))
        keys = [format_key(i) for i in range(20)]
        results = client.get_many(keys)
        assert set(results) == set(keys)
        assert all(v is not None for v in results.values())

    def test_get_many_counts_per_key_load(self, cluster):
        client = FrontEndClient(cluster, LRUCache(1))
        keys = [format_key(i) for i in range(30)]
        client.get_many(keys)
        assert client.monitor.total_lookups() >= 29  # at most 1 local hit

    def test_get_many_serves_local_hits_without_lookups(self, cluster):
        client = FrontEndClient(cluster, LRUCache(64))
        keys = [format_key(i) for i in range(10)]
        client.get_many(keys)
        before = client.monitor.total_lookups()
        client.get_many(keys)
        assert client.monitor.total_lookups() == before

    def test_scan_request_through_client(self, cluster):
        client = FrontEndClient(cluster, CoTCache(16, tracker_capacity=64))
        result = client.execute(ScanRequest(5, 4))
        assert set(result) == {format_key(i) for i in range(5, 9)}

    def test_full_workload_e_through_stack(self, cluster):
        client = FrontEndClient(cluster, CoTCache(32, tracker_capacity=128))
        workload = CoreWorkload("e", record_count=500,
                                max_scan_length=10, seed=8)
        for op in workload.operations_stream(300):
            client.execute(op)
        client.policy.check_invariants()
        assert client.monitor.total_lookups() > 0

    def test_full_workload_f_through_stack(self, cluster):
        client = FrontEndClient(cluster, CoTCache(16, tracker_capacity=64))
        workload = CoreWorkload("f", record_count=500, seed=9)
        for op in workload.operations_stream(500):
            client.execute(op)
            if workload.is_rmw_read(op):
                client.execute(workload.modify(op.key))
        assert cluster.storage.stats.writes > 0
        client.policy.check_invariants()
