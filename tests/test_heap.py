"""Unit and property tests for the indexed min-heap."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heap import IndexedMinHeap


class TestBasics:
    def test_empty(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        assert len(heap) == 0
        assert not heap
        assert "x" not in heap

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().peek()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().pop()

    def test_min_priority_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().min_priority()

    def test_push_and_peek(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        heap.push("c", 2.0)
        assert heap.peek() == ("b", 1.0)
        assert len(heap) == 3
        assert "a" in heap and "b" in heap and "c" in heap

    def test_duplicate_push_raises(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        heap.push("a", 1.0)
        with pytest.raises(ValueError):
            heap.push("a", 2.0)

    def test_pop_order(self):
        heap: IndexedMinHeap[int] = IndexedMinHeap()
        values = [5, 3, 8, 1, 9, 2, 7]
        for v in values:
            heap.push(v, float(v))
        popped = [heap.pop()[0] for _ in range(len(values))]
        assert popped == sorted(values)

    def test_tie_break_is_insertion_order(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        heap.push("first", 1.0)
        heap.push("second", 1.0)
        heap.push("third", 1.0)
        assert [heap.pop()[0] for _ in range(3)] == ["first", "second", "third"]

    def test_update_decrease_moves_to_root(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        for key, p in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
            heap.push(key, p)
        heap.update("c", 0.5)
        assert heap.peek() == ("c", 0.5)

    def test_update_increase_sinks(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        for key, p in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
            heap.push(key, p)
        heap.update("a", 10.0)
        assert heap.pop()[0] == "b"
        assert heap.pop()[0] == "c"
        assert heap.pop() == ("a", 10.0)

    def test_update_unknown_key_raises(self):
        with pytest.raises(KeyError):
            IndexedMinHeap().update("ghost", 1.0)

    def test_remove_middle(self):
        heap: IndexedMinHeap[int] = IndexedMinHeap()
        for v in [4, 2, 6, 1, 5]:
            heap.push(v, float(v))
        assert heap.remove(4) == 4.0
        assert 4 not in heap
        assert [heap.pop()[0] for _ in range(4)] == [1, 2, 5, 6]

    def test_remove_root(self):
        heap: IndexedMinHeap[int] = IndexedMinHeap()
        for v in [3, 1, 2]:
            heap.push(v, float(v))
        heap.remove(1)
        assert heap.peek()[0] == 2

    def test_priority_of(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        heap.push("k", 7.5)
        assert heap.priority_of("k") == 7.5

    def test_items_and_iter(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert dict(heap.items()) == {"a": 1.0, "b": 2.0}
        assert set(heap) == {"a", "b"}

    def test_clear(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        heap.push("a", 1.0)
        heap.clear()
        assert len(heap) == 0
        heap.push("a", 2.0)  # reusable after clear
        assert heap.peek() == ("a", 2.0)

    def test_scale_priorities(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        heap.push("a", 4.0)
        heap.push("b", 2.0)
        heap.scale_priorities(0.5)
        assert heap.priority_of("a") == 2.0
        assert heap.priority_of("b") == 1.0
        assert heap.peek()[0] == "b"

    def test_scale_priorities_negative_raises(self):
        heap: IndexedMinHeap[str] = IndexedMinHeap()
        with pytest.raises(ValueError):
            heap.scale_priorities(-1.0)

    def test_nsmallest(self):
        heap: IndexedMinHeap[int] = IndexedMinHeap()
        for v in [5, 1, 4, 2, 3]:
            heap.push(v, float(v))
        assert heap.nsmallest(3) == [(1, 1.0), (2, 2.0), (3, 3.0)]
        # nsmallest must not mutate the heap
        assert len(heap) == 5


class TestPropertyBased:
    @given(st.lists(st.tuples(st.integers(0, 50), st.floats(-1e6, 1e6)), max_size=200))
    def test_matches_reference_sort(self, pairs):
        heap: IndexedMinHeap[int] = IndexedMinHeap()
        reference: dict[int, float] = {}
        for key, priority in pairs:
            if key in reference:
                heap.update(key, priority)
            else:
                heap.push(key, priority)
            reference[key] = priority
            heap.check_invariants()
        popped = []
        while heap:
            popped.append(heap.pop())
        assert sorted(p for _, p in popped) == pytest.approx(
            sorted(reference.values())
        )
        assert {k for k, _ in popped} == set(reference)

    @settings(max_examples=50)
    @given(st.integers(0, 2**32 - 1))
    def test_random_mixed_operations_keep_invariants(self, seed):
        rng = random.Random(seed)
        heap: IndexedMinHeap[int] = IndexedMinHeap()
        alive: set[int] = set()
        next_key = 0
        for _ in range(300):
            op = rng.random()
            if op < 0.5 or not alive:
                heap.push(next_key, rng.uniform(-100, 100))
                alive.add(next_key)
                next_key += 1
            elif op < 0.75:
                key = rng.choice(sorted(alive))
                heap.update(key, rng.uniform(-100, 100))
            elif op < 0.9:
                key = rng.choice(sorted(alive))
                heap.remove(key)
                alive.discard(key)
            else:
                key, _ = heap.pop()
                alive.discard(key)
            heap.check_invariants()
        assert len(heap) == len(alive)

    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=100))
    def test_min_priority_is_global_min(self, priorities):
        heap: IndexedMinHeap[int] = IndexedMinHeap()
        for i, p in enumerate(priorities):
            heap.push(i, p)
        assert heap.min_priority() == min(priorities)
