"""Unit tests for the write-path strategy layer and the cost controller.

Pins the contracts the stateful fuzzer and ``ext-write`` build on:

* attaching :class:`CacheAsideWritePolicy` is observationally identical
  to the client's inline write path (same values, same shard loads,
  same policy stats) — the byte-identical-default guarantee in small;
* write-through SETs the owning shard (and fans out to every write
  target of a replicated key, quarantining failed replicas exactly like
  the delete fan-out);
* write-behind buffers within ``dirty_limit`` per shard, coalesces
  overwrites, bound-flushes eagerly, falls back to synchronous storage
  writes when the owner is down, loses at most the buffered entries on
  cold revival, and drains gracefully on removal;
* ttl writes advance the logical clock and copies expire lazily after
  ``ttl`` ticks — shard and local layers separately;
* the runner publishes ``write.*`` telemetry for non-default modes and
  nothing for the default;
* :class:`CostAwareController` expands while marginal lines out-earn
  their rent, shrinks when average lines cannot pay it, decays when
  tracked lines outscore cached ones, and honors warm-up after resizes.
"""

from __future__ import annotations

import pytest

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector
from repro.cluster.replication import HotKeyRouter, ReplicationConfig
from repro.cluster.storage import PersistentStore
from repro.cluster.writepolicy import (
    WRITE_MODES,
    CacheAsideWritePolicy,
    TTLWritePolicy,
    WriteBehindPolicy,
    WriteThroughPolicy,
    make_write_policy,
)
from repro.core.costaware import CostAwareController, CostPhase
from repro.core.epoch import EpochSnapshot
from repro.core.resizing import DecisionKind
from repro.engine import (
    ClusterRunner,
    Scale,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    WriteSpec,
)
from repro.errors import ConfigurationError
from repro.policies.base import MISSING
from repro.policies.registry import make_policy


def synthesize(key):
    return ("v", key, 0)


def build_cluster(num_servers=3, seed=0):
    faults = FaultInjector(seed=seed)
    storage = PersistentStore(value_factory=synthesize)
    cluster = CacheCluster(
        num_servers=num_servers,
        capacity_bytes=1 << 16,
        virtual_nodes=32,
        value_size=1,
        storage=storage,
        faults=faults,
    )
    return cluster, faults


def build_client(cluster, client_id="fe-0", policy_lines=8):
    policy = make_policy("cot", policy_lines, tracker_capacity=policy_lines * 2)
    return FrontEndClient(cluster, policy, client_id=client_id)


def attach(cluster, mode, **kwargs):
    wp = make_write_policy(mode, **kwargs)
    wp.bind_cluster(cluster)
    return wp


# ---------------------------------------------------------------------------
# factory / spec surface


class TestFactory:
    def test_each_mode_builds_its_policy(self):
        classes = {
            "cache-aside": CacheAsideWritePolicy,
            "write-through": WriteThroughPolicy,
            "write-behind": WriteBehindPolicy,
            "ttl": TTLWritePolicy,
        }
        assert set(classes) == set(WRITE_MODES)
        for mode, cls in classes.items():
            policy = make_write_policy(mode)
            assert type(policy) is cls
            assert policy.mode == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            make_write_policy("write-around")

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            WriteBehindPolicy(dirty_limit=0)
        with pytest.raises(ConfigurationError):
            TTLWritePolicy(ttl=0)

    def test_write_spec_enabled_and_build(self):
        assert not WriteSpec().enabled
        spec = WriteSpec(mode="write-behind", dirty_limit=7)
        assert spec.enabled
        policy = spec.build_policy()
        assert isinstance(policy, WriteBehindPolicy)
        assert policy.dirty_limit == 7
        assert isinstance(WriteSpec(mode="ttl", ttl=99).build_policy(), TTLWritePolicy)


# ---------------------------------------------------------------------------
# cache-aside: the explicit strategy is the inline path


class TestCacheAsideEquivalence:
    def test_attached_policy_matches_inline_path(self):
        """Same op stream, with and without the explicit strategy:
        identical reads, shard loads and local policy stats."""
        results = []
        for explicit in (False, True):
            cluster, _ = build_cluster(seed=3)
            client = build_client(cluster)
            if explicit:
                client.attach_write_policy(attach(cluster, "cache-aside"))
            values = []
            for i in range(300):
                key = f"k{i % 17}"
                if i % 4 == 0:
                    client.set(key, ("w", i))
                elif i % 11 == 0:
                    client.delete(key)
                else:
                    values.append(client.get(key))
            results.append(
                (
                    values,
                    dict(client.monitor.total_loads()),
                    client.policy.stats.hits,
                    client.policy.stats.misses,
                )
            )
        assert results[0] == results[1]

    def test_stats_account_storage_writes(self):
        cluster, _ = build_cluster()
        client = build_client(cluster)
        wp = attach(cluster, "cache-aside")
        client.attach_write_policy(wp)
        client.set("a", 1)
        client.delete("a")
        assert wp.stats.storage_writes == 2
        assert wp.stats.through_writes == 0


# ---------------------------------------------------------------------------
# write-through


class TestWriteThrough:
    def test_shard_holds_fresh_value_after_ack(self):
        cluster, _ = build_cluster()
        client = build_client(cluster)
        wp = attach(cluster, "write-through")
        client.attach_write_policy(wp)
        client.set("k", ("w", 1))
        server = cluster.server_for("k")
        assert server.get("k") == ("w", 1)
        assert cluster.storage.get("k") == ("w", 1)
        assert wp.stats.through_writes == 1
        assert wp.stats.storage_writes == 1

    def test_down_shard_misses_refresh_but_write_is_durable(self):
        cluster, faults = build_cluster()
        client = build_client(cluster)
        wp = attach(cluster, "write-through")
        client.attach_write_policy(wp)
        victim = cluster.server_for("k").server_id
        cluster.kill_server(victim)
        client.set("k", ("w", 1))
        assert cluster.storage.get("k") == ("w", 1)
        assert wp.stats.through_writes == 0
        assert client.guard.stats.lost_invalidations == 1

    def test_replicated_fanout_sets_every_write_target(self):
        cluster, _ = build_cluster(num_servers=4)
        router = HotKeyRouter(
            cluster,
            ReplicationConfig(degree=3, choices=2, top_n=4, max_keys=4, seed=5),
        )
        client = build_client(cluster)
        client.attach_router(router, seed=9)
        wp = attach(cluster, "write-through")
        client.attach_write_policy(wp)
        replicas = router.promote("hot")
        assert len(replicas) == 3
        client.set("hot", ("w", 7))
        for server_id in replicas:
            assert cluster.server(server_id).get("hot") == ("w", 7)
        assert wp.stats.through_writes == 3

    def test_failed_replica_set_quarantines(self):
        cluster, faults = build_cluster(num_servers=4)
        router = HotKeyRouter(
            cluster,
            ReplicationConfig(degree=3, choices=2, top_n=4, max_keys=4, seed=5),
        )
        client = build_client(cluster)
        client.attach_router(router, seed=9)
        wp = attach(cluster, "write-through")
        client.attach_write_policy(wp)
        replicas = router.promote("hot")
        victim = replicas[-1]
        cluster.kill_server(victim)
        client.set("hot", ("w", 1))
        entry = router.routes["hot"]
        assert victim in entry.quarantine
        assert wp.stats.through_writes == len(replicas) - 1


# ---------------------------------------------------------------------------
# write-behind


class TestWriteBehind:
    def test_buffer_coalesces_and_reads_see_pending(self):
        cluster, _ = build_cluster()
        client = build_client(cluster)
        wp = attach(cluster, "write-behind", dirty_limit=4)
        client.attach_write_policy(wp)
        client.set("k", ("w", 1))
        client.set("k", ("w", 2))
        assert cluster.storage.get("k") == synthesize("k")  # not yet durable
        assert client.get("k") == ("w", 2)
        assert wp.stats.buffered_writes == 2
        assert wp.stats.coalesced_writes == 1
        assert wp.dirty_depth() == 1

    def test_buffered_value_survives_shard_eviction(self):
        """A dirty key whose shard copy is gone must be served from the
        queue, not backfilled stale from storage."""
        cluster, _ = build_cluster()
        client = build_client(cluster)
        wp = attach(cluster, "write-behind", dirty_limit=8)
        client.attach_write_policy(wp)
        client.set("k", ("w", 1))
        server = cluster.server_for("k")
        server.delete("k")  # simulate capacity eviction of the shard copy
        client.policy.invalidate("k")  # and of the local copy
        assert client.get("k") == ("w", 1)

    def test_bound_flush_keeps_depth_at_limit(self):
        cluster, _ = build_cluster(num_servers=1)  # all keys share one queue
        client = build_client(cluster, policy_lines=64)
        wp = attach(cluster, "write-behind", dirty_limit=3)
        client.attach_write_policy(wp)
        for i in range(10):
            client.set(f"k{i}", ("w", i))
        assert wp.stats.peak_dirty <= 3
        assert wp.stats.bound_flushes == 3
        assert wp.stats.flushed_writes == 9
        for i in range(9):  # every bound-flushed write became durable
            assert cluster.storage.get(f"k{i}") == ("w", i)

    def test_flush_drains_and_skips_down_shards(self):
        cluster, _ = build_cluster(num_servers=3)
        client = build_client(cluster, policy_lines=64)
        wp = attach(cluster, "write-behind", dirty_limit=16)
        client.attach_write_policy(wp)
        for i in range(12):
            client.set(f"k{i}", ("w", i))
        dirty = wp.dirty_snapshot()
        victim = max(dirty, key=lambda sid: len(dirty[sid]))
        frozen = len(dirty[victim])
        cluster.kill_server(victim)
        flushed = wp.flush()
        assert flushed == 12 - frozen
        assert wp.dirty_depth() == frozen  # the dead shard's queue froze

    def test_sync_fallback_when_owner_down(self):
        cluster, _ = build_cluster()
        client = build_client(cluster)
        wp = attach(cluster, "write-behind", dirty_limit=4)
        client.attach_write_policy(wp)
        victim = cluster.server_for("k").server_id
        cluster.kill_server(victim)
        client.set("k", ("w", 1))
        assert wp.stats.sync_fallbacks == 1
        assert wp.dirty_depth() == 0
        assert cluster.storage.get("k") == ("w", 1)  # durable immediately

    def test_cold_revival_loses_at_most_dirty_limit(self):
        cluster, _ = build_cluster()
        client = build_client(cluster, policy_lines=64)
        wp = attach(cluster, "write-behind", dirty_limit=5)
        client.attach_write_policy(wp)
        for i in range(20):
            client.set(f"k{i}", ("w", i))
        dirty = wp.dirty_snapshot()
        victim = max(dirty, key=lambda sid: len(dirty[sid]))
        frozen = dict(dirty[victim])
        assert 0 < len(frozen) <= 5
        cluster.kill_server(victim)
        cluster.revive_server(victim, cold=True)
        assert wp.stats.lost_writes == len(frozen)
        assert wp.stats.lost_writes <= 5
        for key in frozen:  # the lost writes never became durable
            assert cluster.storage.get(key) != frozen[key]

    def test_removal_drains_gracefully(self):
        cluster, _ = build_cluster(num_servers=3)
        client = build_client(cluster, policy_lines=64)
        wp = attach(cluster, "write-behind", dirty_limit=16)
        client.attach_write_policy(wp)
        for i in range(12):
            client.set(f"k{i}", ("w", i))
        dirty = wp.dirty_snapshot()
        victim = max(dirty, key=lambda sid: len(dirty[sid]))
        departing = dict(dirty[victim])
        cluster.remove_server(victim)
        assert wp.stats.lost_writes == 0
        for key, value in departing.items():
            assert cluster.storage.get(key) == value

    def test_delete_discards_pending_entry(self):
        cluster, _ = build_cluster()
        client = build_client(cluster)
        wp = attach(cluster, "write-behind", dirty_limit=4)
        client.attach_write_policy(wp)
        client.set("k", ("w", 1))
        client.delete("k")
        assert wp.dirty_depth() == 0
        assert wp.flush() == 0  # nothing to resurrect
        assert cluster.storage.get("k") == synthesize("k")

    def test_replicated_fanout_sets_value_on_all_targets(self):
        cluster, _ = build_cluster(num_servers=4)
        router = HotKeyRouter(
            cluster,
            ReplicationConfig(degree=3, choices=2, top_n=4, max_keys=4, seed=5),
        )
        client = build_client(cluster)
        client.attach_router(router, seed=9)
        wp = attach(cluster, "write-behind", dirty_limit=4)
        client.attach_write_policy(wp)
        replicas = router.promote("hot")
        client.set("hot", ("w", 3))
        for server_id in replicas:
            assert cluster.server(server_id).get("hot") == ("w", 3)
        assert wp.dirty_snapshot() == {replicas[0]: {"hot": ("w", 3)}}


# ---------------------------------------------------------------------------
# ttl


class TestTTL:
    def test_writes_touch_storage_only_and_tick_the_clock(self):
        cluster, _ = build_cluster()
        client = build_client(cluster)
        wp = attach(cluster, "ttl", ttl=4)
        client.attach_write_policy(wp)
        client.set("k", ("w", 1))
        assert wp.clock == 1
        assert cluster.storage.get("k") == ("w", 1)
        server = cluster.server_for("k")
        assert server.get("k") is MISSING  # no shard traffic

    def test_shard_copy_expires_after_ttl_ticks(self):
        cluster, _ = build_cluster()
        client = build_client(cluster)
        wp = attach(cluster, "ttl", ttl=3)
        client.attach_write_policy(wp)
        client.get("k")  # backfills + stamps the shard copy
        client.set("k", ("w", 1))  # obsoletes it; copies linger
        client.policy.invalidate("other-reader-stand-in")
        reader = build_client(cluster, client_id="fe-1")
        reader.attach_write_policy(wp)
        assert reader.get("k") == synthesize("k")  # stale but inside ttl
        client.set("x1", 1)
        client.set("x2", 2)  # clock now ttl past the fill stamp
        assert reader.policy.invalidate("k") or True  # drop reader's local
        assert reader.get("k") == ("w", 1)  # expired → refetched fresh
        assert wp.stats.ttl_expirations >= 1

    def test_local_copy_expires_after_ttl_ticks(self):
        cluster, _ = build_cluster()
        writer = build_client(cluster)
        reader = build_client(cluster, client_id="fe-1")
        wp = attach(cluster, "ttl", ttl=2)
        writer.attach_write_policy(wp)
        reader.attach_write_policy(wp)
        assert reader.get("k") == synthesize("k")  # local copy stamped at 0
        writer.set("k", ("w", 1))
        assert reader.get("k") == synthesize("k")  # stale local, inside ttl
        writer.set("y", 1)  # clock = 2 = ttl past the stamp
        value = reader.get("k")
        assert value == ("w", 1)  # local copy expired on touch
        assert wp.stats.ttl_expirations >= 1

    def test_eviction_listener_drops_stamps(self):
        cluster, _ = build_cluster()
        client = build_client(cluster, policy_lines=2)
        wp = attach(cluster, "ttl", ttl=100)
        client.attach_write_policy(wp)
        for i in range(8):  # overflow the 2-line local cache
            client.get(f"k{i}")
        stamps = wp._local_stamps[client.client_id]
        assert set(stamps) == set(client.policy.cached_keys())


# ---------------------------------------------------------------------------
# runner integration


class TestRunnerIntegration:
    def _run(self, mode, **write_kwargs):
        spec = ScenarioSpec(
            scale=Scale("wp", key_space=300, accesses=4_000,
                        num_clients=2, num_servers=3),
            workload=WorkloadSpec(dist="zipf-0.9", read_fraction=0.8),
            topology=TopologySpec(write=WriteSpec(mode=mode, **write_kwargs)),
            seed=23,
        )
        return ClusterRunner().run(spec).telemetry

    def test_default_mode_publishes_no_write_counters(self):
        snapshot = self._run("cache-aside")
        assert not [k for k in snapshot.counters if k.startswith("write.")]
        assert not [k for k in snapshot.gauges if k.startswith("write.")]

    def test_write_through_storage_equals_attempted_shard_sets(self):
        snapshot = self._run("write-through")
        writes = snapshot.counters["write.storage_writes"]
        assert writes > 0
        assert snapshot.counters["write.through_writes"] == writes

    def test_write_behind_accounting_balances(self):
        snapshot = self._run("write-behind", dirty_limit=8, flush_every=512)
        c = snapshot.counters
        assert c["write.buffered_writes"] == (
            c["write.flushed_writes"] + c["write.coalesced_writes"]
        )
        assert c["write.lost_writes"] == 0  # no chaos in this run
        assert snapshot.gauges["write.peak_dirty_depth"] <= 8.0

    def test_ttl_mode_expires_and_skips_shard_writes(self):
        snapshot = self._run("ttl", ttl=64)
        assert snapshot.counters["write.ttl_expirations"] > 0
        assert snapshot.counters["write.through_writes"] == 0


# ---------------------------------------------------------------------------
# cost-aware controller


def cost_snapshot(index=0, cache=8, tracker=32, alpha_c=0.5, alpha_k_c=0.5):
    return EpochSnapshot(
        index=index,
        cache_capacity=cache,
        tracker_capacity=tracker,
        imbalance=1.0,
        alpha_c=alpha_c,
        alpha_k_c=alpha_k_c,
        accesses=1_000,
    )


class TestCostAwareController:
    def test_validation(self):
        for bad in (
            dict(hit_value=0),
            dict(line_cost=0),
            dict(tracker_ratio=1),
            dict(warmup_epochs=-1),
            dict(hysteresis=0.5),
        ):
            with pytest.raises(ConfigurationError):
                CostAwareController(**bad)

    def test_warmup_observes_only(self):
        ctrl = CostAwareController(warmup_epochs=2, line_cost=0.05)
        decision = ctrl.observe(cost_snapshot(alpha_k_c=10.0))
        assert decision.kind is DecisionKind.WARMUP
        assert not decision.resized
        assert ctrl.phase is CostPhase.WARMUP

    def test_expands_while_marginal_lines_pay_rent(self):
        ctrl = CostAwareController(
            warmup_epochs=1, hit_value=1.0, line_cost=0.05, tracker_ratio=4
        )
        # Burn the initial observation-only epoch.
        assert ctrl.observe(cost_snapshot(alpha_k_c=0.2)).kind is DecisionKind.WARMUP
        decision = ctrl.observe(cost_snapshot(alpha_c=0.4, alpha_k_c=0.2))
        assert decision.kind is DecisionKind.EXPAND
        assert decision.cache_capacity == 16
        assert decision.tracker_capacity == 64
        assert ctrl.phase is CostPhase.EXPANDING
        # Warm-up re-arms after the resize.
        follow = ctrl.observe(cost_snapshot(cache=16, tracker=64, alpha_k_c=0.2))
        assert follow.kind is DecisionKind.WARMUP

    def test_shrinks_when_average_line_below_break_even(self):
        ctrl = CostAwareController(warmup_epochs=0, hit_value=1.0, line_cost=0.05)
        decision = ctrl.observe(cost_snapshot(alpha_c=0.01, alpha_k_c=0.005))
        assert decision.kind is DecisionKind.SHRINK
        assert decision.cache_capacity == 4
        assert ctrl.phase is CostPhase.SHRINKING

    def test_hysteresis_dead_band_holds_steady(self):
        ctrl = CostAwareController(
            warmup_epochs=0, hit_value=1.0, line_cost=0.05, hysteresis=1.25
        )
        # Just inside the band on both sides: no resize.
        decision = ctrl.observe(cost_snapshot(alpha_c=0.05, alpha_k_c=0.05))
        assert decision.kind in (DecisionKind.NONE, DecisionKind.DECAY)
        assert not decision.resized
        assert ctrl.phase is CostPhase.STEADY

    def test_decay_when_tracked_outscore_cached(self):
        ctrl = CostAwareController(warmup_epochs=0, line_cost=0.05)
        decision = ctrl.observe(cost_snapshot(alpha_c=0.05, alpha_k_c=0.055))
        assert decision.kind is DecisionKind.DECAY
        assert decision.decay

    def test_decay_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            CostAwareController(decay_epsilon=-0.1)

    def test_no_decay_thrash_on_stationary_stream(self):
        # Regression: at steady state a stationary workload keeps
        # alpha_k_c a hair above alpha_c (sampling noise, not staleness).
        # Without a dead band the controller issued DECAY every epoch,
        # halving all hotness continuously. Inside the epsilon band the
        # decision must be NONE, epoch after epoch.
        ctrl = CostAwareController(
            warmup_epochs=0, hit_value=1.0, line_cost=0.05, decay_epsilon=0.05
        )
        decays = 0
        for _ in range(50):
            decision = ctrl.observe(
                cost_snapshot(alpha_c=0.050, alpha_k_c=0.0505)
            )
            assert not decision.resized
            decays += decision.kind is DecisionKind.DECAY
        assert decays == 0
        # A genuine Case-2 signal (outside the band, but below the expand
        # threshold of target * hysteresis) still decays.
        breach = ctrl.observe(cost_snapshot(alpha_c=0.05, alpha_k_c=0.06))
        assert breach.kind is DecisionKind.DECAY

    def test_decay_epsilon_zero_restores_legacy_trigger(self):
        ctrl = CostAwareController(warmup_epochs=0, decay_epsilon=0.0)
        decision = ctrl.observe(cost_snapshot(alpha_c=0.050, alpha_k_c=0.0505))
        assert decision.kind is DecisionKind.DECAY

    def test_respects_rails(self):
        ctrl = CostAwareController(warmup_epochs=0, line_cost=0.05, max_cache=8)
        held = ctrl.observe(cost_snapshot(cache=8, alpha_k_c=10.0))
        assert not held.resized
        ctrl2 = CostAwareController(warmup_epochs=0, line_cost=0.05, min_cache=8)
        held2 = ctrl2.observe(cost_snapshot(cache=8, alpha_c=0.0, alpha_k_c=0.0))
        assert not held2.resized

    def test_drives_elastic_client_end_to_end(self):
        import random

        from repro.core.elastic import ElasticCoTClient

        cluster, _ = build_cluster(num_servers=4)
        ctrl = CostAwareController(hit_value=1.0, line_cost=0.05, warmup_epochs=1)
        client = ElasticCoTClient(
            cluster, controller=ctrl, initial_cache=4, initial_tracker=8,
            base_epoch=64,
        )
        rng = random.Random(3)
        for _ in range(8_000):
            k = int(400 * (rng.random() ** 3))
            client.get(f"k{min(k, 399)}")
        assert client.cot.capacity > 4  # skewed traffic earned growth
        phases = {record.phase for record in client.history}
        assert CostPhase.EXPANDING.value in phases
        assert client.history[-1].alpha_target == pytest.approx(0.05)
