"""Integration tests of the socket data plane (:mod:`repro.net`).

Everything here runs real asyncio servers on ephemeral localhost ports
(via :class:`~repro.net.plane.NetworkPlane`'s loop thread), but at tiny
scales so the whole file stays in tier-1 time. The heavyweight
multi-process harness is exercised by the perf gate and the verify.sh
net-smoke stage, not here.
"""

from __future__ import annotations

import pytest

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.cluster.faults import FaultInjector
from repro.cluster.retry import BreakerState
from repro.cluster.storage import PersistentStore
from repro.errors import ProtocolError, ShardDownError
from repro.net.harness import decision_equivalence
from repro.net.plane import NetworkPlane
from repro.policies.base import MISSING
from repro.policies.registry import make_policy


def make_cluster(num_servers: int = 2, faults: bool = False) -> CacheCluster:
    return CacheCluster(
        num_servers=num_servers,
        capacity_bytes=1 << 20,
        value_size=1,
        virtual_nodes=64,
        storage=PersistentStore(lambda key: ("v", key)),
        faults=FaultInjector() if faults else None,
    )


@pytest.fixture
def plane():
    cluster = make_cluster(faults=True)
    plane = NetworkPlane(cluster).start()
    yield plane
    plane.close()


# -------------------------------------------------------------- shard proxy


def test_proxy_set_get_delete_roundtrip(plane):
    shard = plane.server(plane.server_ids[0])
    assert shard.get("k") is MISSING
    shard.set("k", ("tuple", 42))
    assert shard.get("k") == ("tuple", 42)
    assert shard.delete("k") is True
    assert shard.delete("k") is False
    assert shard.get("k") is MISSING


def test_get_many_is_one_wire_round_trip(plane):
    shard = plane.server(plane.server_ids[0])
    for i in range(8):
        shard.set(f"k{i}", i)
    before = plane.client_stats.requests
    got = shard.get_many([f"k{i}" for i in range(8)] + ["absent"])
    assert plane.client_stats.requests == before + 1
    assert got == {f"k{i}": i for i in range(8)}


def test_routing_matches_the_ring(plane):
    # server_for on the plane must route exactly like the wrapped cluster.
    for key in (f"usertable:{i}" for i in range(64)):
        assert (
            plane.server_for(key).server_id
            == plane.cluster.ring.server_for(key)
        )


# ------------------------------------------------------------ fault surface


def test_injected_faults_cross_the_wire(plane):
    sid = plane.server_ids[0]
    shard = plane.server(sid)
    shard.set("k", 1)
    plane.cluster.kill_server(sid)
    with pytest.raises(ShardDownError):
        shard.get("k")
    plane.cluster.revive_server(sid, cold=True)
    assert shard.get("k") is MISSING  # cold revival flushed the copy


def test_breaker_opens_on_wire_faults(plane):
    client = FrontEndClient(plane, make_policy("cot", 16))
    keys = [f"usertable:{i}" for i in range(32)]
    for key in keys:
        client.get(key)
    victim = plane.server_ids[0]
    plane.cluster.kill_server(victim)
    for key in keys * 4:
        client.get(key)  # storage fallback; breaker absorbs the failures
    assert client.guard.breaker(victim).state is BreakerState.OPEN


def test_drop_connections_forces_reconnect(plane):
    sid = plane.server_ids[0]
    shard = plane.server(sid)
    shard.set("k", 1)
    before = plane.client_stats.reconnects
    plane.drop_connections(sid)
    # The dropped socket surfaces as ShardDownError at most once; the
    # pool then reconnects lazily and the shard is reachable again.
    for _attempt in range(3):
        try:
            assert shard.get("k") == 1
            break
        except ShardDownError:
            continue
    else:
        pytest.fail("shard never became reachable after the drop")
    assert plane.client_stats.reconnects > before


def test_removed_shard_tears_down_its_server(plane):
    sid = plane.server_ids[-1]
    assert sid in plane.server_stats()
    plane.cluster.remove_server(sid)
    assert sid not in plane.server_stats()


def test_oversized_value_is_a_protocol_error(plane):
    shard = plane.server(plane.server_ids[0])
    with pytest.raises(ProtocolError):
        shard.set("big", b"x" * (2 << 20))
    # The connection survives the rejected set (recoverable damage).
    shard.set("small", b"ok")
    assert shard.get("small") == b"ok"


# ------------------------------------------------------- two-plane contract


def test_decision_equivalence_small_stream():
    equal, in_process, networked = decision_equivalence(
        accesses=1_500, key_space=400, cache_lines=64
    )
    assert equal, {"in_process": in_process, "networked": networked}


def test_telemetry_counts_real_traffic(plane):
    shard = plane.server(plane.server_ids[0])
    for i in range(16):
        shard.set(f"k{i}", i)
        shard.get(f"k{i}")
    net = plane.telemetry()
    assert net["requests"] >= 32
    assert net["server_requests"] >= 32
    assert net["connections"] >= 1
    assert net["bytes_in"] > 0 and net["bytes_out"] > 0
    assert sum(net["batch_depths"].values()) > 0


# ---------------------------------------------------------- engine plumbing


def test_runner_network_axis_is_decision_identical():
    from repro.engine import telemetry as T
    from repro.engine.runners import ClusterRunner
    from repro.engine.spec import (
        NetworkSpec,
        PolicySpec,
        Scale,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
    )

    def spec(enabled: bool) -> ScenarioSpec:
        return ScenarioSpec(
            scale=Scale(
                "tiny", key_space=300, accesses=800,
                num_clients=1, num_servers=2, seed=11,
            ),
            workload=WorkloadSpec(dist="zipf-0.9"),
            policy=PolicySpec(name="cot", cache_lines=32),
            topology=TopologySpec(
                num_servers=2, num_clients=1,
                network=NetworkSpec(enabled=enabled),
            ),
        )

    runner = ClusterRunner()
    off = runner.run(spec(False))
    on = runner.run(spec(True))
    for name in (T.HITS, T.MISSES, T.ACCESSES):
        assert off.telemetry.counter(name) == on.telemetry.counter(name)
    # net.* telemetry exists exactly when the axis is on.
    assert not [n for n in off.telemetry.counters if n.startswith("net.")]
    on_net = {n for n in on.telemetry.counters if n.startswith("net.")}
    assert T.NET_REQUESTS in on_net and T.NET_CONNECTIONS in on_net
    assert on.telemetry.histogram(T.NET_BATCH_DEPTH).count > 0


def test_network_specs_are_not_process_parallelizable():
    from repro.engine.parallel import cluster_spec_parallelizable
    from repro.engine.spec import (
        NetworkSpec,
        PolicySpec,
        Scale,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
    )

    def spec(enabled: bool) -> ScenarioSpec:
        return ScenarioSpec(
            scale=Scale("tiny", key_space=100, accesses=100),
            workload=WorkloadSpec(dist="uniform"),
            policy=PolicySpec(name="cot", cache_lines=16),
            topology=TopologySpec(network=NetworkSpec(enabled=enabled)),
        )

    assert cluster_spec_parallelizable(spec(False))
    assert not cluster_spec_parallelizable(spec(True))
