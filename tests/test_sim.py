"""Tests for the discrete-event simulation substrate (Figures 5-6)."""

from __future__ import annotations

import pytest

from repro.engine import (
    PolicySpec,
    Scale,
    ScenarioSpec,
    SimRunner,
    TopologySpec,
    WorkloadSpec,
)
from repro.errors import ConfigurationError, SimulationError
from repro.policies.lru import LRUCache
from repro.policies.nullcache import NullCache
from repro.sim.events import Simulator
from repro.sim.network import FixedLatency, JitteredLatency, PAPER_RTT
from repro.sim.server import ServiceModel, SimBackendServer
from repro.workloads.mixer import OperationMixer
from repro.workloads.uniform import UniformGenerator
from repro.workloads.zipfian import ZipfianGenerator


class TestSimulator:
    def test_event_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.schedule(1.0, lambda: order.append("early-2"))
        end = sim.run()
        assert order == ["early", "early-2", "late"]
        assert end == 2.0
        assert sim.processed_events == 3

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(0.5, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 1.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at(self):
        sim = Simulator()
        hit = []
        sim.schedule_at(3.0, lambda: hit.append(sim.now))
        sim.run()
        assert hit == [3.0]

    def test_event_budget(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(1e-3)
        assert model.rtt() == 1e-3
        assert model.one_way() == 5e-4

    def test_fixed_default_is_paper_rtt(self):
        assert FixedLatency().rtt() == PAPER_RTT

    def test_fixed_validation(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(-1.0)

    def test_jittered_bounds(self):
        model = JitteredLatency(base_rtt=1e-3, jitter_fraction=0.5,
                                floor_fraction=0.5, seed=1)
        samples = [model.rtt() for _ in range(1000)]
        assert all(s >= 0.5e-3 for s in samples)
        assert len(set(samples)) > 1

    def test_jittered_validation(self):
        with pytest.raises(ConfigurationError):
            JitteredLatency(base_rtt=0)


class TestSimBackendServer:
    def test_fcfs_serialization(self):
        sim = Simulator()
        model = ServiceModel(
            base_service_time=1.0, thrash_factor=0.0, load_penalty=0.0
        )
        server = SimBackendServer("s", model, fair_share=1.0)
        done = []
        server.submit(sim, lambda: done.append(sim.now))
        server.submit(sim, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0, 2.0]

    def test_thrashing_inflates_service(self):
        sim = Simulator()
        model = ServiceModel(
            base_service_time=1.0,
            thrash_threshold=1,
            thrash_factor=1.0,
            load_penalty=0.0,
        )
        server = SimBackendServer("s", model, fair_share=1.0)
        done = []
        for _ in range(3):
            server.submit(sim, lambda: done.append(sim.now))
        sim.run()
        # 1st: queue=1 -> 1s; 2nd: queue=2 -> 2s; 3rd: queue=3 -> 3s.
        assert done == [1.0, 3.0, 6.0]

    def test_load_penalty_applies_to_hot_share(self):
        sim = Simulator()
        model = ServiceModel(
            base_service_time=1.0, thrash_factor=0.0, load_penalty=1.0
        )
        total = [0]
        hot = SimBackendServer("hot", model, fair_share=0.5)
        cold = SimBackendServer("cold", model, fair_share=0.5)
        hot.bind_total_counter(total)
        cold.bind_total_counter(total)
        finish = {}
        for _ in range(3):
            hot.submit(sim, lambda: None)
        cold.submit(sim, lambda: None)
        sim.run()
        # hot served 3/4 of arrivals against a 1/2 fair share -> slowed.
        assert hot.share() == pytest.approx(0.75)
        assert hot.busy_time > cold.busy_time

    def test_utilization(self):
        sim = Simulator()
        model = ServiceModel(base_service_time=1.0, thrash_factor=0.0,
                             load_penalty=0.0)
        server = SimBackendServer("s", model, fair_share=1.0)
        server.submit(sim, lambda: None)
        end = sim.run()
        assert server.utilization(end) == pytest.approx(1.0)

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceModel(base_service_time=0)
        with pytest.raises(ConfigurationError):
            ServiceModel(thrash_factor=-1)


class TestEndToEnd:
    def make_spec(self, dist, policy_factory, clients=4, reqs=500):
        def mixer(i):
            if dist == "uniform":
                gen = UniformGenerator(2_000, seed=100 + i)
            else:
                gen = ZipfianGenerator(2_000, theta=dist, seed=100 + i)
            return OperationMixer(gen, seed=200 + i)

        return ScenarioSpec(
            scale=Scale.tiny(),
            workload=WorkloadSpec(mixer_factory=mixer),
            policy=PolicySpec(factory=policy_factory),
            topology=TopologySpec(num_servers=4, num_clients=clients),
            requests_per_client=reqs,
        )

    def run(self, *args, **kwargs):
        return SimRunner().run(self.make_spec(*args, **kwargs))

    def test_validation(self):
        spec = self.make_spec("uniform", lambda i: NullCache(), clients=0)
        with pytest.raises(ConfigurationError):
            SimRunner().run(spec)

    def test_all_requests_complete(self):
        telemetry = self.run("uniform", lambda i: NullCache()).telemetry
        assert telemetry.total_requests == 4 * 500
        assert telemetry.runtime > 0
        assert telemetry.throughput > 0
        assert len(telemetry.per_client_runtime) == 4

    def test_skew_slower_than_uniform_without_cache(self):
        uniform = self.run("uniform", lambda i: NullCache()).telemetry
        skewed = self.run(1.2, lambda i: NullCache()).telemetry
        assert skewed.runtime > uniform.runtime
        assert skewed.backend_imbalance > uniform.backend_imbalance

    def test_front_end_cache_cuts_skewed_runtime(self):
        no_cache = self.run(1.2, lambda i: NullCache()).telemetry
        cached = self.run(1.2, lambda i: LRUCache(64)).telemetry
        assert cached.runtime < no_cache.runtime
        assert cached.hit_rate > 0.2
        assert cached.backend_imbalance < no_cache.backend_imbalance

    def test_mean_latency_positive(self):
        telemetry = self.run("uniform", lambda i: NullCache()).telemetry
        assert telemetry.mean_latency > PAPER_RTT / 2

    def test_write_path_executes(self):
        def mixer(i):
            gen = UniformGenerator(100, seed=i)
            return OperationMixer(gen, read_fraction=0.5, seed=300 + i)

        spec = ScenarioSpec(
            scale=Scale.tiny(),
            workload=WorkloadSpec(mixer_factory=mixer),
            policy=PolicySpec(factory=lambda i: LRUCache(16)),
            topology=TopologySpec(num_servers=2, num_clients=2),
            requests_per_client=200,
        )
        result = SimRunner().run(spec)
        assert result.telemetry.total_requests == 400
        assert result.cluster.storage.stats.writes > 0
