"""Tests for the client-driven protocol (paper Section 2)."""

from __future__ import annotations

import pytest

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.core.cache import CoTCache
from repro.policies.lru import LRUCache
from repro.policies.nullcache import NullCache
from repro.workloads.request import OpType, Request


@pytest.fixture
def cluster():
    return CacheCluster(num_servers=4, virtual_nodes=64, value_size=10)


class TestReadPath:
    def test_first_get_populates_both_tiers(self, cluster):
        client = FrontEndClient(cluster, LRUCache(4))
        value = client.get("k1")
        assert value is not None
        backend = cluster.server_for("k1")
        assert "k1" in backend           # caching layer populated
        assert "k1" in client.policy     # local cache populated
        assert cluster.storage.stats.reads == 1

    def test_second_get_is_local(self, cluster):
        client = FrontEndClient(cluster, LRUCache(4))
        client.get("k1")
        lookups_before = client.monitor.total_lookups()
        client.get("k1")
        assert client.monitor.total_lookups() == lookups_before
        assert client.policy.stats.hits == 1

    def test_local_miss_layer_hit_skips_storage(self, cluster):
        # Client B reads a key client A already pulled into the layer.
        a = FrontEndClient(cluster, LRUCache(4), client_id="a")
        b = FrontEndClient(cluster, LRUCache(4), client_id="b")
        a.get("k1")
        reads_before = cluster.storage.stats.reads
        b.get("k1")
        assert cluster.storage.stats.reads == reads_before

    def test_null_cache_always_routes(self, cluster):
        client = FrontEndClient(cluster, NullCache())
        client.get("k1")
        client.get("k1")
        assert client.monitor.total_lookups() == 2

    def test_monitor_counts_by_owner(self, cluster):
        client = FrontEndClient(cluster, NullCache())
        for i in range(50):
            client.get(f"key-{i}")
        loads = client.monitor.total_loads()
        assert sum(loads.values()) == 50
        for server_id, count in loads.items():
            assert count == cluster.server(server_id).stats.gets


class TestWritePath:
    def test_set_invalidates_everywhere(self, cluster):
        client = FrontEndClient(cluster, LRUCache(4))
        client.get("k1")
        client.set("k1", "new-value")
        assert "k1" not in client.policy
        assert "k1" not in cluster.server_for("k1")
        assert cluster.storage.get("k1") == "new-value"

    def test_set_does_not_count_as_lookup(self, cluster):
        client = FrontEndClient(cluster, LRUCache(4))
        client.set("k1", "v")
        assert client.monitor.total_lookups() == 0

    def test_cot_update_penalty_via_protocol(self, cluster):
        client = FrontEndClient(cluster, CoTCache(4, tracker_capacity=16))
        client.get("k1")
        hot_before = client.policy.hotness_of("k1")
        client.set("k1", "v2")
        assert client.policy.hotness_of("k1") == hot_before - 1.0

    def test_read_after_write_returns_new_value(self, cluster):
        client = FrontEndClient(cluster, LRUCache(4))
        client.get("k1")
        client.set("k1", "v2")
        assert client.get("k1") == "v2"

    def test_delete(self, cluster):
        client = FrontEndClient(cluster, LRUCache(4))
        client.get("k1")
        client.delete("k1")
        assert "k1" not in client.policy
        assert "k1" not in cluster.server_for("k1")


class TestExecuteAndMetrics:
    def test_execute_dispatch(self, cluster):
        client = FrontEndClient(cluster, LRUCache(4))
        assert client.execute(Request(OpType.GET, "k")) is not None
        assert client.execute(Request(OpType.SET, "k", value="v")) is None
        assert client.execute(Request(OpType.DELETE, "k")) is None

    def test_hit_rate_metric(self, cluster):
        client = FrontEndClient(cluster, LRUCache(4))
        client.get("k")
        client.get("k")
        assert client.local_hit_rate() == 0.5

    def test_local_imbalance_metric(self, cluster):
        client = FrontEndClient(cluster, NullCache())
        for i in range(100):
            client.get(f"key-{i}")
        assert client.local_imbalance() >= 1.0

    def test_repr(self, cluster):
        client = FrontEndClient(cluster, LRUCache(4), client_id="f1")
        assert "f1" in repr(client)
