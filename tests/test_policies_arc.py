"""Tests for the ARC implementation against the FAST'03 specification."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.arc import ARCCache
from repro.policies.base import MISSING


def access(arc, key):
    """One full REQUEST: lookup, and admit on a miss."""
    value = arc.lookup(key)
    if value is MISSING:
        arc.admit(key, key)
        return False
    return True


class TestBasics:
    def test_new_keys_enter_t1(self):
        arc = ARCCache(4)
        access(arc, "a")
        assert "a" in arc
        assert len(arc) == 1

    def test_second_access_promotes_to_t2(self):
        arc = ARCCache(4)
        access(arc, "a")
        assert access(arc, "a") is True

    def test_capacity_respected(self):
        arc = ARCCache(3)
        for i in range(20):
            access(arc, i)
        assert len(arc) <= 3

    def test_scan_resistance(self):
        """A one-shot scan must not flush the frequent working set."""
        arc = ARCCache(4)
        for _ in range(5):
            for key in ("w1", "w2"):
                access(arc, key)
        for i in range(100):
            access(arc, f"scan-{i}")
        # The frequently-used pair survives the scan (possibly via ghosts:
        # re-accessing must hit quickly).
        hits = sum(access(arc, key) for key in ("w1", "w2"))
        assert hits >= 1

    def test_ghost_hit_in_b1_grows_p(self):
        arc = ARCCache(2)
        access(arc, "a")
        access(arc, "a")   # a promoted to T2
        access(arc, "b")   # T1: [b]
        access(arc, "c")   # Case IV(b): REPLACE spills b -> B1
        assert "b" in arc.ghost_keys[0]
        p_before = arc.p
        access(arc, "b")   # ghost hit in B1
        assert arc.p > p_before
        assert "b" in arc

    def test_t1_full_b1_empty_evicts_without_ghost(self):
        """ARC Case IV(a) with |T1| == c: the LRU page of T1 is dropped
        outright, *not* remembered in B1 (FAST'03 pseudocode)."""
        arc = ARCCache(2)
        access(arc, "a")   # T1: a
        access(arc, "b")   # T1: a b
        access(arc, "c")   # |T1|=c, B1 empty -> drop a with no ghost
        b1, _b2 = arc.ghost_keys
        assert "a" not in b1
        assert "a" not in arc

    def test_ghost_hit_in_b2_shrinks_p(self):
        arc = ARCCache(2)
        # Build T2 entries, spill one to B2, then re-touch it.
        access(arc, "a")
        access(arc, "a")   # a in T2
        access(arc, "b")
        access(arc, "b")   # b in T2
        access(arc, "c")   # evict from T2 -> B2 (p=0 -> replace from T2)
        b1, b2 = arc.ghost_keys
        assert b2, "expected a B2 ghost"
        ghost = b2[-1]
        arc._p = 2.0       # force p up so we can observe the decrease
        access(arc, ghost)
        assert arc.p < 2.0

    def test_p_bounded(self):
        arc = ARCCache(4)
        rng = random.Random(1)
        for _ in range(2000):
            access(arc, rng.randrange(12))
            assert 0.0 <= arc.p <= 4.0

    def test_invalidate_drops_everywhere(self):
        arc = ARCCache(2)
        access(arc, "a")
        arc.invalidate("a")
        assert "a" not in arc
        b1, b2 = arc.ghost_keys
        assert "a" not in b1 and "a" not in b2

    def test_resize_shrink(self):
        arc = ARCCache(8)
        for i in range(8):
            access(arc, i)
        arc.resize(3)
        assert len(arc) <= 3
        assert arc.p <= 3.0


class TestGhostDiscipline:
    def test_ghost_lists_bounded(self):
        """|T1|+|B1| <= c and |T1|+|T2|+|B1|+|B2| <= 2c at all times."""
        arc = ARCCache(4)
        rng = random.Random(9)
        for _ in range(3000):
            access(arc, rng.randrange(40))
            b1, b2 = arc.ghost_keys
            t_total = len(arc)
            assert t_total <= 4
            assert t_total + len(b1) + len(b2) <= 2 * 4 + 1  # transient +1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 8))
    def test_random_streams_never_break(self, seed, capacity):
        arc = ARCCache(capacity)
        rng = random.Random(seed)
        for _ in range(600):
            key = rng.randrange(30)
            if rng.random() < 0.05:
                arc.invalidate(key)
            else:
                access(arc, key)
            assert len(arc) <= capacity

    def test_frequency_favoring_workload_beats_lru(self):
        from repro.policies.lru import LRUCache

        rng = random.Random(17)
        population = list(range(500))
        weights = [1.0 / (i + 1) ** 1.2 for i in population]
        arc, lru = ARCCache(16), LRUCache(16)
        for _ in range(30_000):
            key = rng.choices(population, weights)[0]
            for policy in (arc, lru):
                if policy.lookup(key) is MISSING:
                    policy.admit(key, key)
        assert arc.stats.hit_rate >= lru.stats.hit_rate
