"""Property-based tests of the wire codec (:mod:`repro.net.proto`).

The decoders are incremental push parsers, so the load-bearing property
is **chunking invariance**: encode a frame sequence, slice the byte
stream at hypothesis-chosen boundaries, feed the slices one by one, and
the decoded frames must equal the originals no matter where the cuts
landed. The rest of the file pins the damage taxonomy — recoverable
errors (oversized value with a readable length, unknown verb) keep the
decoder parsing; fatal errors (unparsable ``set`` header, endless
unterminated line) mark it broken.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShardDownError, ShardFlakyError, ShardTimeoutError
from repro.net.proto import (
    MAX_LINE_BYTES,
    BadCommand,
    DeleteCommand,
    GetCommand,
    QuitCommand,
    Reply,
    RequestDecoder,
    ResponseDecoder,
    SetCommand,
    TouchCommand,
    Value,
    VersionCommand,
    decode_failure,
    dump_value,
    encode_failure,
    load_value,
    valid_key,
)

# ---------------------------------------------------------------- strategies

#: wire-legal keys: 1..32 printable ASCII chars with no whitespace
keys = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=32,
)
payloads = st.binary(max_size=256)

get_commands = st.builds(
    GetCommand,
    keys=st.lists(keys, min_size=1, max_size=5).map(tuple),
    cas=st.booleans(),
)
set_commands = st.builds(
    SetCommand,
    key=keys,
    flags=st.integers(min_value=0, max_value=7),
    exptime=st.integers(min_value=0, max_value=1 << 20),
    data=payloads,
    noreply=st.booleans(),
)
delete_commands = st.builds(DeleteCommand, key=keys, noreply=st.booleans())
touch_commands = st.builds(
    TouchCommand,
    key=keys,
    exptime=st.integers(min_value=0, max_value=1 << 20),
    noreply=st.booleans(),
)
commands = st.one_of(
    get_commands,
    set_commands,
    delete_commands,
    touch_commands,
    st.just(VersionCommand()),
)

values = st.builds(
    Value,
    key=keys,
    flags=st.integers(min_value=0, max_value=7),
    data=payloads,
    cas=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 30)),
)
replies = st.one_of(
    st.builds(
        Reply,
        kind=st.just("END"),
        values=st.lists(values, max_size=4).map(tuple),
    ),
    st.sampled_from(
        [Reply("STORED"), Reply("DELETED"), Reply("NOT_FOUND"), Reply("TOUCHED")]
    ),
    st.builds(
        Reply,
        kind=st.sampled_from(["SERVER_ERROR", "CLIENT_ERROR", "VERSION"]),
        message=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            min_size=1,
            max_size=40,
        ).map(lambda s: " ".join(s.split()) or "x"),
    ),
)


def chunked(stream: bytes, cuts: list[int]) -> list[bytes]:
    """Slice ``stream`` at the (normalized) cut offsets."""
    offsets = sorted({min(c, len(stream)) for c in cuts})
    pieces, last = [], 0
    for off in offsets:
        pieces.append(stream[last:off])
        last = off
    pieces.append(stream[last:])
    return [p for p in pieces if p]


# ------------------------------------------------------- chunking invariance


@settings(max_examples=120, deadline=None)
@given(
    cmds=st.lists(commands, min_size=1, max_size=6),
    cuts=st.lists(st.integers(min_value=0, max_value=4096), max_size=12),
)
def test_request_stream_roundtrip_any_chunking(cmds, cuts):
    stream = b"".join(c.encode() for c in cmds)
    decoder = RequestDecoder()
    out = []
    for piece in chunked(stream, cuts):
        out.extend(decoder.feed(piece))
    assert out == cmds
    assert not decoder.broken


@settings(max_examples=120, deadline=None)
@given(
    frames=st.lists(replies, min_size=1, max_size=6),
    cuts=st.lists(st.integers(min_value=0, max_value=4096), max_size=12),
)
def test_response_stream_roundtrip_any_chunking(frames, cuts):
    stream = b"".join(r.encode() for r in frames)
    decoder = ResponseDecoder()
    out = []
    for piece in chunked(stream, cuts):
        out.extend(decoder.feed(piece))
    assert out == list(frames)
    assert not decoder.broken


@settings(max_examples=60, deadline=None)
@given(cmd=set_commands)
def test_partial_reassembly_byte_by_byte(cmd):
    """Nothing comes out until the last byte lands; then exactly the frame."""
    stream = cmd.encode()
    decoder = RequestDecoder()
    out = []
    for i, byte in enumerate(stream):
        got = decoder.feed(bytes([byte]))
        if i < len(stream) - 1:
            assert got == []
        out.extend(got)
    assert out == [cmd]


@settings(max_examples=60, deadline=None)
@given(value=st.one_of(payloads, st.integers(), st.tuples(st.text(), st.integers())))
def test_value_payload_roundtrip(value):
    flags, payload = dump_value(value)
    assert load_value(flags, payload) == value


# ----------------------------------------------------------- damage taxonomy


def test_oversized_value_is_consumed_and_recoverable():
    decoder = RequestDecoder(max_value_bytes=8)
    big = b"x" * 64
    stream = (
        b"set huge 0 0 64\r\n" + big + b"\r\n"
        b"get after\r\n"
    )
    frames = decoder.feed(stream)
    assert frames == [
        BadCommand("object too large for cache"),
        GetCommand(("after",)),
    ]
    assert not decoder.broken


def test_bad_key_set_discards_block_and_recovers():
    decoder = RequestDecoder()
    frames = decoder.feed(b"set bad\tkey 0 0 3\r\nabc\r\nversion\r\n")
    # "bad\tkey" splits into two tokens -> 5 args -> unreadable header.
    assert frames[0].fatal
    decoder = RequestDecoder()
    frames = decoder.feed(b"set " + b"k" * 300 + b" 0 0 3\r\nabc\r\nversion\r\n")
    assert frames == [BadCommand("bad key"), VersionCommand()]
    assert not decoder.broken


def test_unparsable_set_header_is_fatal():
    decoder = RequestDecoder()
    frames = decoder.feed(b"set k 0 0 notanumber\r\ngarbage\r\nget k\r\n")
    assert frames == [BadCommand("bad set header", fatal=True)]
    assert decoder.broken
    # A broken decoder stays silent; nothing after the damage is a frame.
    assert decoder.feed(b"get k\r\n") == []


def test_unknown_verb_is_recoverable_error_frame():
    decoder = RequestDecoder()
    frames = decoder.feed(b"frobnicate now\r\nget k\r\n")
    assert frames[0].kind == "ERROR"
    assert not frames[0].fatal
    assert frames[1] == GetCommand(("k",))


def test_unterminated_line_overflow_is_fatal():
    decoder = RequestDecoder()
    frames = decoder.feed(b"g" * (MAX_LINE_BYTES + 10))
    assert frames == [BadCommand("line exceeds maximum length", fatal=True)]
    assert decoder.broken


def test_bad_block_trailer_is_fatal():
    decoder = RequestDecoder()
    frames = decoder.feed(b"set k 0 0 3\r\nabcXXget k\r\n")
    assert frames == [BadCommand("bad data chunk", fatal=True)]
    assert decoder.broken


def test_response_error_aborts_multi_get():
    decoder = ResponseDecoder()
    stream = (
        Value("a", 0, b"1").encode()
        + b"SERVER_ERROR down gone\r\n"
        + Reply("STORED").encode()
    )
    frames = decoder.feed(stream)
    assert frames == [Reply("SERVER_ERROR", "down gone"), Reply("STORED")]
    assert not decoder.broken


def test_unparsable_response_marks_broken():
    decoder = ResponseDecoder()
    frames = decoder.feed(b"WAT is this\r\n")
    assert len(frames) == 1 and frames[0].kind == "CLIENT_ERROR"
    assert decoder.broken
    assert decoder.feed(Reply("STORED").encode()) == []


# ------------------------------------------------------------ odds and ends


def test_quit_and_version_parse():
    decoder = RequestDecoder()
    assert decoder.feed(b"version\r\nquit\r\n") == [
        VersionCommand(),
        QuitCommand(),
    ]


@pytest.mark.parametrize(
    "exc_type", [ShardDownError, ShardTimeoutError, ShardFlakyError]
)
def test_failure_frames_roundtrip_exception_type(exc_type):
    reply = encode_failure(exc_type("shard s0 unavailable"))
    rebuilt = decode_failure(reply)
    assert type(rebuilt) is exc_type
    assert "unavailable" in str(rebuilt)


def test_valid_key_rejects_whitespace_control_and_long():
    assert valid_key("usertable:42")
    assert not valid_key("has space")
    assert not valid_key("tab\there")
    assert not valid_key("")
    assert not valid_key("k" * 251)
    assert valid_key("k" * 250)
