"""Batch ``run_stream`` fast paths must be unobservable.

LRU, LFU, ARC, LRU-2 and CoT override :meth:`CachePolicy.run_stream` with
loop-inlined fast paths (hoisted attribute lookups, direct stats bumps) so
the adaptive arbiter's shadow replays stay cheap. These tests drive a twin
instance through the *base-class* scalar implementation — the semantic
reference — and assert the two end in byte-identical visible state: cached
keys in order, full stats, the exact eviction-notification sequence, and
the policy-specific internals (ARC's ``p``/ghosts, LRU-2's history, LFU's
frequencies).
"""

from __future__ import annotations

import pytest

from repro.policies.base import CachePolicy
from repro.policies.registry import POLICY_NAMES, make_policy
from repro.workloads.zipfian import ZipfianGenerator

CAPACITY = 64
TRACKER = 256


def _build(name):
    return make_policy(name, CAPACITY, tracker_capacity=TRACKER)


def _visible_state(policy):
    state = {
        "cached": list(policy.cached_keys()),
        "hits": policy.stats.hits,
        "misses": policy.stats.misses,
        "insertions": policy.stats.insertions,
        "evictions": policy.stats.evictions,
        "epoch_hits": policy.stats.epoch_hits,
        "epoch_misses": policy.stats.epoch_misses,
    }
    name = policy.name
    if name == "arc":
        state["p"] = policy.p
        state["ghosts"] = policy.ghost_keys
    elif name == "lru2":
        state["history"] = list(policy._history)
        state["clock"] = policy._clock
    elif name == "lfu":
        state["freqs"] = {k: policy.frequency_of(k) for k in policy.cached_keys()}
    elif name == "cot":
        tracker = policy.tracker
        state["tracked"] = sorted(
            (key, tracker.hotness_of(key)) for key in tracker._stats
        )
        state["h_min"] = policy.h_min()
    return state


def _drive_pair(name, keys):
    fast = _build(name)
    slow = _build(name)
    fast_evicted: list = []
    slow_evicted: list = []
    fast.eviction_listeners.append(fast_evicted.append)
    slow.eviction_listeners.append(slow_evicted.append)
    fast.run_stream(keys)
    CachePolicy.run_stream(slow, keys)  # the scalar semantic reference
    assert fast_evicted == slow_evicted, f"{name}: eviction sequences diverge"
    assert _visible_state(fast) == _visible_state(slow), f"{name}: state diverges"


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_zipfian_stream_matches_scalar_reference(name):
    keys = list(ZipfianGenerator(1_000, theta=0.99, seed=7).keys(20_000))
    _drive_pair(name, keys)


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_scan_then_reuse_matches_scalar_reference(name):
    """Sequential flood then dense reuse — exercises ghost/history paths."""
    keys = list(range(400)) + [i % 37 for i in range(3_000)] + list(range(200, 500))
    _drive_pair(name, keys)


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_interleaved_batches_match_scalar_reference(name):
    """State carried across multiple run_stream calls stays aligned."""
    fast = _build(name)
    slow = _build(name)
    for seed in (1, 2, 3):
        keys = list(ZipfianGenerator(300, theta=1.2, seed=seed).keys(4_000))
        fast.run_stream(keys)
        CachePolicy.run_stream(slow, keys)
    assert _visible_state(fast) == _visible_state(slow)


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_zero_capacity_stream(name):
    policy = make_policy(name, 0, tracker_capacity=TRACKER)
    policy.run_stream([1, 2, 3, 1, 2])
    assert len(policy) == 0
    assert policy.stats.misses == 5
    assert policy.stats.hits == 0
