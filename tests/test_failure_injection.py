"""Failure/churn injection: the cluster changes under running front ends.

The paper deploys CoT in cloud environments where "cloud instance
migration is the norm"; these tests drive front ends while back-end
shards join and leave, checking that the client-driven protocol and the
elastic controller keep functioning (no crashes, no stale routing, data
still correct from storage).
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.client import FrontEndClient
from repro.cluster.cluster import CacheCluster
from repro.core.cache import CoTCache
from repro.core.elastic import ElasticCoTClient
from repro.policies.lru import LRUCache
from repro.workloads.base import format_key
from repro.workloads.zipfian import ZipfianGenerator


def small_cluster(n=4):
    return CacheCluster(num_servers=n, virtual_nodes=256, value_size=1)


class TestScaleOut:
    def test_lookup_continues_after_server_added(self):
        cluster = small_cluster()
        client = FrontEndClient(cluster, LRUCache(8))
        generator = ZipfianGenerator(2_000, theta=1.0, seed=1)
        for key in generator.keys(500):
            client.get(format_key(key))
        added = cluster.add_server()
        for key in generator.keys(500):
            client.get(format_key(key))
        # The new shard received some of the traffic...
        assert added.stats.gets > 0
        # ...and the monitor learned about it on the fly.
        assert added.server_id in client.monitor.total_loads()

    def test_values_correct_across_rebalance(self):
        """Keys that moved shards are refetched from storage, not lost."""
        cluster = small_cluster()
        client = FrontEndClient(cluster, LRUCache(4))
        keys = [format_key(i) for i in range(100)]
        expected = {key: client.get(key) for key in keys}
        cluster.add_server()
        for key in keys:
            client.policy.invalidate(key)  # force re-resolution via ring
            assert client.get(key) == expected[key]

    def test_elastic_client_survives_scale_out(self):
        cluster = small_cluster()
        client = ElasticCoTClient(cluster, target_imbalance=1.2, base_epoch=200)
        generator = ZipfianGenerator(2_000, theta=1.3, seed=2)
        for key in generator.keys(2_000):
            client.get(format_key(key))
        cluster.add_server()
        for key in generator.keys(4_000):
            client.get(format_key(key))
        assert client.epoch_index > 0
        client.cot.check_invariants()


class TestScaleIn:
    def test_lookup_continues_after_server_removed(self):
        cluster = small_cluster()
        client = FrontEndClient(cluster, LRUCache(8))
        generator = ZipfianGenerator(2_000, theta=1.0, seed=3)
        for key in generator.keys(500):
            client.get(format_key(key))
        removed_id = cluster.server_ids[0]
        cluster.remove_server(removed_id)
        for key in generator.keys(500):
            value = client.get(format_key(key))
            assert value is not None
        # No lookup routed to the departed shard after removal.
        assert removed_id not in {
            cluster.ring.server_for(format_key(k)) for k in range(200)
        }

    def test_orphaned_keys_served_from_storage(self):
        """Keys whose shard left are cache-layer misses served by storage
        and re-cached on their new shard."""
        cluster = small_cluster()
        client = FrontEndClient(cluster, LRUCache(1))
        key = format_key(7)
        value = client.get(key)
        owner = cluster.ring.server_for(key)
        cluster.remove_server(owner)
        client.policy.invalidate(key)
        assert client.get(key) == value
        new_owner = cluster.server_for(key)
        assert key in new_owner


class TestChurnStress:
    def test_random_churn_never_corrupts(self):
        rng = random.Random(17)
        cluster = small_cluster(3)
        clients = [
            FrontEndClient(cluster, CoTCache(8, tracker_capacity=32),
                           client_id=f"c{i}")
            for i in range(2)
        ]
        generator = ZipfianGenerator(1_000, theta=1.1, seed=4)
        for step in range(3_000):
            client = clients[step % 2]
            key = format_key(generator.next_key())
            roll = rng.random()
            if roll < 0.9:
                client.get(key)
            elif roll < 0.98:
                client.set(key, ("w", step))
            elif roll < 0.99 and len(cluster.server_ids) < 6:
                cluster.add_server()
            elif len(cluster.server_ids) > 2:
                cluster.remove_server(rng.choice(cluster.server_ids))
        for client in clients:
            client.policy.check_invariants()
        # Reads still observe authoritative data everywhere.
        for key_id in range(20):
            key = format_key(key_id)
            for client in clients:
                client.policy.invalidate(key)
            values = {repr(client.get(key)) for client in clients}
            assert len(values) == 1
