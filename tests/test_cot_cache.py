"""Tests for CoT's replacement policy (Algorithm 2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CoTCache
from repro.core.hotness import HotnessModel
from repro.errors import ConfigurationError
from repro.policies.base import MISSING


class TestConstruction:
    def test_default_tracker_is_double(self):
        cache = CoTCache(8)
        assert cache.tracker_capacity == 16

    def test_tracker_must_exceed_cache(self):
        with pytest.raises(ConfigurationError):
            CoTCache(8, tracker_capacity=8)

    def test_zero_capacity(self):
        cache = CoTCache(0, tracker_capacity=2)
        assert cache.lookup("a") is MISSING
        cache.admit("a", 1)
        assert len(cache) == 0


class TestAlgorithm2:
    def test_miss_then_admit_into_free_cache(self):
        cache = CoTCache(2, tracker_capacity=8)
        assert cache.lookup("a") is MISSING
        cache.admit("a", "va")
        assert cache.lookup("a") == "va"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_cold_key_cannot_displace_hot_key(self):
        cache = CoTCache(1, tracker_capacity=8)
        for _ in range(5):
            cache.lookup("hot")
        cache.admit("hot", "vh")
        # One access to a cold key: hotness 1 < hot's 5+ -> declined.
        assert cache.lookup("cold") is MISSING
        cache.admit("cold", "vc")
        assert "cold" not in cache
        assert "hot" in cache

    def test_warming_key_eventually_displaces(self):
        cache = CoTCache(1, tracker_capacity=8)
        cache.lookup("old")
        cache.lookup("old")
        cache.admit("old", "vo")
        # "new" needs hotness strictly above old's to enter.
        for _ in range(4):
            cache.lookup("new")
        cache.admit("new", "vn")
        assert "new" in cache
        assert "old" not in cache
        assert cache.stats.evictions == 1

    def test_hits_update_hotness_and_order(self):
        cache = CoTCache(2, tracker_capacity=8)
        for key in ("a", "b"):
            cache.lookup(key)
            cache.admit(key, key)
        for _ in range(3):
            cache.lookup("b")
        assert cache.h_min() == cache.hotness_of("a")

    def test_tracker_hits_counted(self):
        cache = CoTCache(1, tracker_capacity=8)
        cache.lookup("a")
        cache.admit("a", 1)
        cache.lookup("b")         # b now tracked, not cached
        assert cache.epoch_tracker_hits == 0
        cache.lookup("b")         # second access: tracked-not-cached hit
        assert cache.epoch_tracker_hits == 1

    def test_record_update_penalizes_and_invalidates(self):
        cache = CoTCache(2, tracker_capacity=8)
        cache.lookup("a")
        cache.lookup("a")
        cache.admit("a", 1)
        hot_before = cache.hotness_of("a")
        cache.record_update("a")
        assert "a" not in cache
        assert cache.hotness_of("a") == hot_before - 1.0
        assert cache.stats.invalidations == 1

    def test_frequently_updated_key_stays_out(self):
        cache = CoTCache(1, tracker_capacity=8)
        for _ in range(4):
            cache.lookup("readonly")
        cache.admit("readonly", 1)
        # "churny" gets reads but also heavy updates -> net hotness low.
        for _ in range(5):
            cache.lookup("churny")
            cache.record_update("churny")
        cache.lookup("churny")
        cache.admit("churny", 2)
        assert "churny" not in cache
        assert "readonly" in cache

    def test_invalidate_keeps_tracking(self):
        cache = CoTCache(2, tracker_capacity=8)
        cache.lookup("a")
        cache.admit("a", 1)
        cache.invalidate("a")
        assert "a" not in cache
        assert cache.hotness_of("a") == 1.0  # still tracked

    def test_admit_refreshes_value(self):
        cache = CoTCache(2, tracker_capacity=8)
        cache.lookup("a")
        cache.admit("a", "v1")
        cache.admit("a", "v2")
        assert cache.lookup("a") == "v2"


class TestResizing:
    def test_set_sizes_shrink_drops_values(self):
        cache = CoTCache(4, tracker_capacity=16)
        for key in "abcd":
            cache.lookup(key)
            cache.admit(key, key)
        cache.set_sizes(1, 4)
        assert len(cache) <= 1
        assert cache.capacity == 1
        assert cache.tracker_capacity == 4
        cache.check_invariants()

    def test_set_sizes_validation(self):
        cache = CoTCache(4)
        with pytest.raises(ConfigurationError):
            cache.set_sizes(4, 4)

    def test_policy_resize_hook(self):
        cache = CoTCache(4, tracker_capacity=16)
        cache.resize(8)
        assert cache.capacity == 8
        assert cache.tracker_capacity == 16

    def test_alpha_metrics(self):
        cache = CoTCache(2, tracker_capacity=6)
        cache.lookup("a")
        cache.admit("a", 1)
        cache.lookup("a")
        cache.lookup("a")
        assert cache.alpha_c() == pytest.approx(1.0)  # 2 hits / 2 lines
        cache.lookup("b")
        cache.lookup("b")
        assert cache.alpha_k_c() == pytest.approx(0.25)  # 1 hit / 4 lines
        cache.reset_epoch()
        assert cache.alpha_c() == 0.0
        assert cache.epoch_tracker_hits == 0

    def test_decay(self):
        cache = CoTCache(2, tracker_capacity=8)
        for _ in range(4):
            cache.lookup("a")
        cache.decay(0.5)
        assert cache.hotness_of("a") == pytest.approx(2.0)


class TestHitRateSanity:
    def test_beats_lru_on_skewed_stream(self):
        from repro.policies.lru import LRUCache

        rng = random.Random(7)
        population = list(range(200))
        weights = [1.0 / (i + 1) for i in population]
        cot = CoTCache(8, tracker_capacity=64)
        lru = LRUCache(8)
        for _ in range(20_000):
            key = rng.choices(population, weights)[0]
            for policy in (cot, lru):
                if policy.lookup(key) is MISSING:
                    policy.admit(key, key)
        assert cot.stats.hit_rate > lru.stats.hit_rate

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_invariants_under_random_mixed_stream(self, seed):
        rng = random.Random(seed)
        cache = CoTCache(4, tracker_capacity=12, model=HotnessModel())
        for _ in range(500):
            key = rng.randrange(30)
            action = rng.random()
            if action < 0.75:
                if cache.lookup(key) is MISSING:
                    cache.admit(key, key)
            elif action < 0.9:
                cache.record_update(key) if key in cache.tracker else None
            else:
                cache.invalidate(key)
        cache.check_invariants()
        assert len(cache) <= 4
