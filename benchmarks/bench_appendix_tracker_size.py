"""Benchmark + regeneration of the appendix tracker-size figure.

Asserts the saturation shape: growing the tracker at a fixed cache size
raises the hit rate sharply at first and then plateaus — the property
CoT's phase-1 ratio discovery exploits.
"""

from __future__ import annotations

from repro.experiments import appendix_tracker_size


def bench_appendix_tracker_size(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: appendix_tracker_size.run(bench_scale, sizes=[3, 15, 63]),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    for row in result.rows:
        rates = row[1:]
        # Early doubling gains dominate late ones (saturation).
        early_gain = rates[1] - rates[0]   # 2C -> 4C
        late_gain = rates[-1] - rates[-2]  # 16C -> 32C
        assert early_gain > late_gain
        # And the curve is (noise-tolerantly) non-decreasing.
        for earlier, later in zip(rates, rates[1:]):
            assert later >= earlier - 1.0
