"""Benchmark + regeneration of the non-Zipfian distributions extension.

Asserts the cross-distribution shapes: CoT wins clearly on Gaussian
hotness, everything saturates on a hotspot cliff smaller than the cache,
and on drifting recency (CoT's hardest case) the decay extension
recovers the gap to the recency-adaptive policies.
"""

from __future__ import annotations

from repro.engine import Scale
from repro.experiments import extension_distributions


def bench_extension_distributions(benchmark, record_result):
    scale = Scale.smoke().scaled(name="bench", num_clients=1)
    result = benchmark.pedantic(
        lambda: extension_distributions.run(scale),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    rows = {row[0]: row for row in result.rows}
    headers = result.headers
    cot = headers.index("cot")
    lru = headers.index("lru")
    decay = headers.index("cot+decay")
    # Gaussian: the tracker filter dominates recency.
    assert rows["gaussian"][cot] > rows["gaussian"][lru] + 5
    # Hotspot cliff under cache size: all policies near the ceiling.
    assert min(rows["hotspot"][1:6]) > 85.0
    # Drifting recency: decay recovers CoT's stale-hotness weakness.
    assert rows["latest"][decay] > rows["latest"][cot] + 5
    benchmark.extra_info["latest_cot"] = rows["latest"][cot]
    benchmark.extra_info["latest_cot_decay"] = rows["latest"][decay]
