#!/usr/bin/env python
"""Headless perf-regression gate over the data-plane micro-benchmarks.

Runs the ``bench_ops_throughput`` suite under pytest-benchmark without any
interactive output and records per-bench throughput in ``BENCH_ops.json``
at the repository root, so every PR leaves a comparable performance
trajectory behind.

Modes
-----
Record (default)::

    python benchmarks/run_perf_gate.py --label fastpath

appends one entry (label, timestamp, per-bench ops/s) to ``BENCH_ops.json``.

Check::

    python benchmarks/run_perf_gate.py --check

re-runs the suite and fails (exit 1) when any benchmark's throughput drops
more than ``--threshold`` (default 25%) below the most recent committed
entry — the invocation CI wires in front of merges. ``--against LABEL``
compares to a specific recorded entry instead of the latest.

Throughput is reported as operations per second: pytest-benchmark's
``1 / min-round-time`` scaled by the bench's ``ops_per_round`` extra-info
when present (the policy/ sketch loops run 2000 ops per timed round).
The *minimum* round is the noise-robust estimator on a small shared
host: scheduler contention only ever inflates a round, so the best
round tracks the code's true cost while the mean flaps with the
neighbours — the same reasoning the tracing gate's min-of-medians uses.

Parallel-scaling gate
---------------------
Both modes also run ``bench_parallel_scaling`` (one fig4 smoke grid
through the parallel fabric at 1/2/4 workers). Record mode stores the
measurement (seconds, speedups, host cpu count) in each entry; check mode
additionally gates ``speedup@4 >= 2.0`` — but only on hosts with at least
4 CPUs, since process fan-out physically cannot beat the sequential path
without cores to fan to (the measurement is still printed and the
fabric's determinism cross-check is always enforced).
``--parallel-scaling`` runs only this measurement.

Hot-key replication gate
------------------------
Both modes also run the ``ext-hotkey`` single-hot-key pair (classic vs
replicated tier, identical seeds, smoke scale) and measure the host's raw
shard service rate. Cluster throughput on a skewed workload is paced by
the hottest shard, so modeled cluster ops/s = shard service rate x
(total backend gets / hottest-shard gets) — a model rather than a
wall-clock measurement because the in-process testbed serializes shards
on one CPU; the parallelism factor itself is deterministic telemetry.
Check mode gates the replicated run at >= 2x modeled throughput and
<= 0.5x max-shard spread (max/mean) vs the unreplicated baseline.
``--hot-key`` runs only this measurement.

Write-path gate
---------------
Both modes also probe the write-path strategy layer
(:mod:`repro.cluster.writepolicy`) on a 50/50 read/write stream:

* **wall-clock**: the same front end drives the stream under inline
  cache-aside and under an attached write-through strategy, best-of-N
  rounds each. Write-through must keep >= 1/1.5 of cache-aside's ops/s —
  the strategy layer's synchronous shard update is allowed to cost, but
  not to triple the write path.
* **modeled**: storage round trips dominate real deployments (the
  in-process testbed makes them free), so acknowledged-path throughput
  is modeled as ``wall ops/s x 1 / (1 + S x foreground storage writes
  per op)`` with RPC weight ``S = 10``. Write-behind acknowledges into
  a dirty buffer (foreground storage writes ~ 0: only shard-down sync
  fallbacks), so its modeled throughput must beat write-through's by
  >= 1.3x.

``--write-path`` runs only this measurement.

Tracing-overhead gate
---------------------
Both modes also measure the request tracer's cost on the hot path: the
same ``FrontEndClient.get`` loop (cot policy, lookup+admit) is timed with
``tracer=None`` and with a low-rate sampling :class:`~repro.obs.trace.Tracer`
attached, best-of-N rounds each. The gate fails when the traced loop's
throughput drops more than ``--overhead-threshold`` (default 5%) below the
untraced loop — observability must stay effectively free when it is not
sampling. ``--tracing-overhead`` runs only this measurement.

Adaptive-arbitration gate
-------------------------
Both modes also price the :class:`~repro.policies.adaptive.AdaptiveArbiter`
(DESIGN.md §14). Two probes:

* **shadow overhead**: the same ``FrontEndClient.get`` loop (cot 512/2048)
  runs pinned and wrapped in an arbiter whose switch margin is unreachably
  high — the live policy stays cot, so the pair differs only by the
  SHARDS-sampled ghost shadows and epoch scoring. Min-of-block-medians
  overhead must stay <= 15% (``ADAPTIVE_OVERHEAD_TARGET``).
* **tracking quality**: every ``ext-adaptive`` scenario (diurnal,
  scan-flood, migration) replays at smoke scale; in each settled phase
  window the arbiter's hit value must land within ``CONVERGENCE_SLACK``
  (5%) of the best fixed policy for that window.

``--adaptive`` runs only this measurement.

Network-plane gate
------------------
Both modes also exercise the socket data plane (:mod:`repro.net`):

* **throughput**: the multi-process closed-loop harness (spawned asyncio
  shard servers + pipelined front-end clients over real TCP sockets)
  reports wall-clock requests/sec and requests/sec/core, plus the
  latency distribution from ``perf_counter_ns`` timings.
* **pipelining**: the same request stream is driven through one
  connection at concurrency 1 (strict request/response lockstep) and at
  depth 32 (pipelined). Check mode gates ``pipelined >= 3x unpipelined``
  — the whole point of the wire format is amortizing round trips.
* **equivalence**: a 10k-request mixed stream replays through the
  in-process plane and the socket plane with identical seeds; every
  front-end cache decision, shard counter, and storage counter must
  match exactly (the two-plane contract of DESIGN.md §15).

``--network`` runs only this measurement.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_ops.json"
SUITE = "benchmarks/bench_ops_throughput.py"

#: ops per timed round / timing rounds / warmup ops for the tracing gate
TRACE_OPS = 40_000
TRACE_ROUNDS = 9
#: independent median-of-TRACE_ROUNDS estimates; the gate takes their
#: minimum — scheduler noise on a small shared host inflates any single
#: estimate by several points, but a *real* traced-path regression
#: inflates all of them
TRACE_BLOCKS = 3
TRACE_WARMUP = 20_000
#: sampling rate used for the traced run — realistic production setting
#: (one request in 1024 records a span tree; the rest pay one accumulator
#: bump in ``Tracer.start``)
TRACE_SAMPLE_RATE = 1.0 / 1024.0


def run_suite() -> dict[str, dict[str, float]]:
    """Run the suite headlessly; returns ``{bench_name: {metrics}}``."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                SUITE,
                "--benchmark-only",
                f"--benchmark-json={json_path}",
                "-q",
                "--no-header",
                "-p",
                "no:cacheprovider",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0 or not json_path.exists():
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit(f"benchmark suite failed (exit {proc.returncode})")
        raw = json.loads(json_path.read_text(encoding="utf-8"))
    results: dict[str, dict[str, float]] = {}
    for bench in raw["benchmarks"]:
        best = bench["stats"]["min"]
        ops_per_round = bench.get("extra_info", {}).get("ops_per_round", 1)
        results[bench["name"]] = {
            "min_round_s": best,
            "ops_per_round": ops_per_round,
            "ops_per_sec": ops_per_round / best if best else 0.0,
        }
    return results


#: independent suite sessions merged per-bench by best ops/s — a noisy-
#: neighbour burst can outlast one whole pytest-benchmark session, so a
#: single session's min round still flaps; a *real* regression is slow
#: in every session (the suite-level twin of the tracing gate's blocks)
SUITE_BLOCKS = 3


def run_suite_best(blocks: int = SUITE_BLOCKS) -> dict[str, dict[str, float]]:
    """Best-of-``blocks`` independent suite runs (per-bench max ops/s)."""
    merged: dict[str, dict[str, float]] = {}
    for _ in range(blocks):
        for name, metrics in run_suite().items():
            best = merged.get(name)
            if best is None or metrics["ops_per_sec"] > best["ops_per_sec"]:
                merged[name] = metrics
    return merged


def _suite_failures(
    baseline: dict, current: dict, threshold: float
) -> list[str]:
    """Bench names under the threshold vs the baseline entry."""
    fails = []
    for name, base_metrics in baseline["results"].items():
        base_ops = base_metrics["ops_per_sec"]
        now = current.get(name)
        if now is None or (
            base_ops and now["ops_per_sec"] / base_ops < 1.0 - threshold
        ):
            fails.append(name)
    return fails


def _build_traced_client(tracer):
    """A warmed ``FrontEndClient`` (cot policy) plus its key stream."""
    from repro.cluster.client import FrontEndClient
    from repro.cluster.cluster import CacheCluster
    from repro.policies.registry import make_policy
    from repro.workloads.zipfian import ZipfianGenerator

    generator = ZipfianGenerator(10_000, theta=0.99, seed=42)
    keys = [f"usertable:{k}" for k in generator.keys_array(TRACE_OPS)]
    cluster = CacheCluster(num_servers=8, value_size=1, virtual_nodes=1024)
    client = FrontEndClient(
        cluster, make_policy("cot", 512, tracker_capacity=2048), tracer=tracer
    )
    warmup = keys * (TRACE_WARMUP // len(keys) + 1)
    for key in warmup[:TRACE_WARMUP]:
        client.get(key)
    return client, keys


def _sweep(client, keys) -> float:
    """Wall time of one sweep of the key stream."""
    get = client.get
    started = time.perf_counter()
    for key in keys:
        get(key)
    return time.perf_counter() - started


def measure_tracing_overhead() -> dict[str, float]:
    """Time the cot lookup+admit hot path untraced vs. traced.

    Runs in-process (no pytest-benchmark) because the comparison is
    relative. The measurement is *paired*: one client object runs every
    sweep, with the tracer attached or detached between sweeps — two
    separately-built clients differ by several percent from memory layout
    alone, which would swamp the effect being gated. Sweep order
    alternates per round so within-round drift cancels too; a traced
    request takes the same cache/guard/monitor decisions as an untraced
    one, so flipping the tracer does not perturb the policy state the
    paired sweeps share.

    The reported overhead is the minimum of ``TRACE_BLOCKS`` independent
    median-of-``TRACE_ROUNDS`` estimates. A single median still swings
    by several points when the host is contended (observed ±8 pts on a
    shared 1-CPU box, both signs — the effect being gated is well under
    the noise floor); contention only *inflates* an estimate spuriously,
    never all of them in the same direction for long, while a genuine
    traced-path regression lifts every block.
    """
    import gc

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs.trace import Tracer

    client, keys = _build_traced_client(None)
    tracer = Tracer(sample_rate=TRACE_SAMPLE_RATE)
    # Warm both branch shapes (adaptive-interpreter specialization) before
    # any timed sweep, and keep the collector out of the timing windows.
    for config in (tracer, None):
        client.tracer = config
        _sweep(client, keys)
    untraced = traced = float("inf")
    block_medians: list[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _block in range(TRACE_BLOCKS):
            ratios: list[float] = []
            for round_index in range(TRACE_ROUNDS):
                # Each round yields one traced/untraced ratio from two
                # temporally adjacent sweeps; the median of the per-round
                # ratios shrugs off the heavy-tailed scheduler noise that
                # makes a global best-of comparison flap.
                if round_index % 2 == 0:
                    client.tracer = None
                    gc.collect()
                    plain = _sweep(client, keys)
                    client.tracer = tracer
                    sampled = _sweep(client, keys)
                else:
                    client.tracer = tracer
                    gc.collect()
                    sampled = _sweep(client, keys)
                    client.tracer = None
                    plain = _sweep(client, keys)
                untraced = min(untraced, plain)
                traced = min(traced, sampled)
                ratios.append(sampled / plain)
            ratios.sort()
            block_medians.append(ratios[len(ratios) // 2])
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "untraced_ops_per_sec": len(keys) / untraced,
        "traced_ops_per_sec": len(keys) / traced,
        "overhead_fraction": min(block_medians) - 1.0,
        "block_medians": [m - 1.0 for m in block_medians],
        "sample_rate": TRACE_SAMPLE_RATE,
    }


#: Allowed hot-path slowdown from the adaptive arbiter's shadow machinery
#: (SHARDS-sampled ghost shadows + epoch scoring), live policy pinned.
ADAPTIVE_OVERHEAD_TARGET = 0.15
#: More blocks than the tracing gate: the unpaired two-client comparison
#: has a higher noise floor, and the minimum over blocks only sheds a
#: contention burst if some block escaped it.
ADAPTIVE_BLOCKS = 5


def _build_adaptive_client(arbitrated: bool):
    """A warmed ``FrontEndClient`` (cot 512/2048) plus its key stream.

    With ``arbitrated`` the cot policy rides inside an
    :class:`~repro.policies.adaptive.AdaptiveArbiter` whose switch margin
    is unreachably high, pinning the live policy to cot — the pair then
    differs only by the arbiter's sampling and shadow machinery, which is
    exactly what the gate prices.
    """
    from repro.cluster.client import FrontEndClient
    from repro.cluster.cluster import CacheCluster
    from repro.engine.spec import ArbitrationSpec, PolicySpec
    from repro.workloads.zipfian import ZipfianGenerator

    arbitration = ArbitrationSpec(switch_margin=1e9) if arbitrated else None
    spec = PolicySpec(
        name="cot", cache_lines=512, tracker_lines=2048, arbitration=arbitration
    )
    generator = ZipfianGenerator(10_000, theta=0.99, seed=42)
    keys = [f"usertable:{k}" for k in generator.keys_array(TRACE_OPS)]
    cluster = CacheCluster(num_servers=8, value_size=1, virtual_nodes=1024)
    client = FrontEndClient(cluster, spec.build(0))
    warmup = keys * (TRACE_WARMUP // len(keys) + 1)
    for key in warmup[:TRACE_WARMUP]:
        client.get(key)
    return client, keys


def measure_adaptive_overhead() -> dict[str, float]:
    """Time the serving hot path pinned vs. wrapped in the arbiter.

    Same estimator family as :func:`measure_tracing_overhead` — per-round
    ratios of temporally adjacent whole-stream sweeps, median per block,
    minimum over ``ADAPTIVE_BLOCKS`` blocks — but the comparison cannot
    be paired on one object: pinned-vs-arbitrated *is* two different
    policy stacks. Whole sweeps (not finer time-slicing) are deliberate:
    alternating the clients at sub-sweep granularity makes each evict
    the other's working set, which taxes the larger-footprint arbiter
    for refaults a resident production arbiter never pays.
    ``ADAPTIVE_OVERHEAD_TARGET`` also sits well above the few-point
    floor that two independently-built clients differ by from memory
    layout alone.
    """
    import gc

    sys.path.insert(0, str(REPO_ROOT / "src"))
    pinned, keys = _build_adaptive_client(False)
    arbitrated, _ = _build_adaptive_client(True)
    plain_best = wrapped_best = float("inf")
    block_medians: list[float] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _block in range(ADAPTIVE_BLOCKS):
            ratios: list[float] = []
            for round_index in range(TRACE_ROUNDS):
                gc.collect()
                if round_index % 2 == 0:
                    plain = _sweep(pinned, keys)
                    wrapped = _sweep(arbitrated, keys)
                else:
                    wrapped = _sweep(arbitrated, keys)
                    plain = _sweep(pinned, keys)
                plain_best = min(plain_best, plain)
                wrapped_best = min(wrapped_best, wrapped)
                ratios.append(wrapped / plain)
            ratios.sort()
            block_medians.append(ratios[len(ratios) // 2])
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "pinned_ops_per_sec": len(keys) / plain_best,
        "arbitrated_ops_per_sec": len(keys) / wrapped_best,
        "overhead_fraction": min(block_medians) - 1.0,
        "block_medians": [m - 1.0 for m in block_medians],
    }


def measure_adaptive() -> dict:
    """Shadow-overhead probe plus smoke-scale convergence per scenario."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.engine.spec import Scale
    from repro.experiments.extension_adaptive import (
        CONVERGENCE_SLACK,
        SCENARIOS,
        run_scenario,
    )
    from repro.policies.registry import POLICY_NAMES

    overhead = measure_adaptive_overhead()
    scale = Scale.smoke()
    scenarios: dict[str, dict] = {}
    for name in SCENARIOS:
        result = run_scenario(name, scale)
        ratios: list[float] = []
        for _start, window, end in result["windows"]:
            best_fixed = max(
                sum(result["per_epoch"][p][window:end]) for p in POLICY_NAMES
            )
            arbiter_value = sum(result["per_epoch"]["adaptive"][window:end])
            ratios.append(arbiter_value / best_fixed if best_fixed else 1.0)
        scenarios[name] = {
            "window_ratios": ratios,
            "converged": result["converged"],
            "switches": result["switches"],
            "regret": result["regret"],
            "final_live": result["final_live"],
        }
    return {
        "overhead": overhead,
        "convergence_slack": CONVERGENCE_SLACK,
        "scenarios": scenarios,
    }


def check_adaptive(record: dict | None = None) -> int:
    """Gate: shadows <= 15% on the hot path; convergence on every scenario."""
    record = record if record is not None else measure_adaptive()
    overhead = record["overhead"]
    fraction = overhead["overhead_fraction"]
    for _retry in range(2):
        if fraction <= ADAPTIVE_OVERHEAD_TARGET:
            break
        # The external-host noise bursts that swamp this box last whole
        # minutes — sometimes longer than all ADAPTIVE_BLOCKS, inflating
        # every block median at once. Re-measure in a fresh window and
        # keep the best estimate: a real hot-path regression is slow in
        # every window (the overhead twin of the suite gate's
        # retry-and-merge; convergence is deterministic, not re-run).
        print(f"  (overhead {fraction:+.2%} over threshold; re-measuring "
              f"in a fresh window)")
        retry = measure_adaptive_overhead()
        if retry["overhead_fraction"] < fraction:
            overhead = retry
            fraction = retry["overhead_fraction"]
            record["overhead"] = retry
    slack = record["convergence_slack"]
    blocks = ", ".join(f"{m:+.2%}" for m in overhead["block_medians"])
    print("adaptive arbitration — shadow overhead on the serving hot path "
          "(cot 512/2048, live policy pinned):")
    print(f"  pinned     {overhead['pinned_ops_per_sec']:>14,.0f} ops/s")
    print(f"  arbitrated {overhead['arbitrated_ops_per_sec']:>14,.0f} ops/s")
    print(f"  overhead   {fraction:>+14.2%}  (threshold "
          f"+{ADAPTIVE_OVERHEAD_TARGET:.0%}; block medians {blocks})")
    failed: list[str] = []
    if fraction > ADAPTIVE_OVERHEAD_TARGET:
        failed.append(
            f"shadow-cache overhead {fraction:+.2%} exceeds "
            f"+{ADAPTIVE_OVERHEAD_TARGET:.0%} over the pinned policy"
        )
    print(f"  convergence (smoke scale; arbiter within {slack:.0%} of the "
          f"best fixed policy in each settled phase window):")
    for name, summary in record["scenarios"].items():
        ratios = ", ".join(f"{r:.3f}" for r in summary["window_ratios"])
        verdict = "ok" if all(summary["converged"]) else "FAILED"
        print(f"    {name:10s} ratios [{ratios}]  "
              f"switches {summary['switches']}  "
              f"final {summary['final_live']:8s} {verdict}")
        if not all(summary["converged"]):
            failed.append(
                f"{name}: arbiter fell more than {slack:.0%} short of the "
                f"best fixed policy in a settled window (ratios [{ratios}])"
            )
    if failed:
        print("\nadaptive gate FAILED:")
        for reason in failed:
            print(f"  - {reason}")
        return 1
    print("adaptive gate passed")
    return 0


#: Required pipelined-vs-lockstep speedup at NETWORK_PIPELINE_DEPTH.
NETWORK_PIPELINE_TARGET = 3.0
NETWORK_PIPELINE_DEPTH = 32
#: closed-loop harness sizing (kept small: the gate runs on 1-CPU CI)
NETWORK_LOAD_SERVERS = 2
NETWORK_LOAD_CLIENTS = 2
NETWORK_LOAD_REQUESTS = 5_000
#: equivalence-stream length (the ISSUE's 10k-request contract)
NETWORK_EQUIVALENCE_ACCESSES = 10_000


def measure_network() -> dict:
    """Socket-plane probes: harness throughput, pipelining, equivalence."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.net.harness import (
        decision_equivalence,
        measure_pipelining,
        run_network_load,
    )

    report = run_network_load(
        num_servers=NETWORK_LOAD_SERVERS,
        num_clients=NETWORK_LOAD_CLIENTS,
        requests_per_client=NETWORK_LOAD_REQUESTS,
    )
    pipelining = measure_pipelining(depth=NETWORK_PIPELINE_DEPTH)
    equal, _in_process, _networked = decision_equivalence(
        accesses=NETWORK_EQUIVALENCE_ACCESSES
    )
    histogram = report.histogram
    return {
        "servers": report.num_servers,
        "clients": report.num_clients,
        "concurrency": report.concurrency,
        "requests": report.requests,
        "elapsed_s": report.elapsed,
        "requests_per_sec": report.throughput,
        "requests_per_sec_per_core": report.throughput_per_core,
        "cpu_count": os.cpu_count() or 1,
        "latency_p50_us": histogram.percentile(50) * 1e6,
        "latency_p99_us": histogram.percentile(99) * 1e6,
        "pipelining": pipelining,
        "decision_equivalent": equal,
        "equivalence_accesses": NETWORK_EQUIVALENCE_ACCESSES,
    }


def check_network(record: dict | None = None) -> int:
    """Gate: pipelining must pay >= 3x and both planes must agree."""
    record = record if record is not None else measure_network()
    pipelining = record["pipelining"]
    speedup = pipelining["speedup"]
    print(f"network plane — {record['servers']} shard server(s), "
          f"{record['clients']} client process(es) x concurrency "
          f"{record['concurrency']}, {record['cpu_count']} cpu(s):")
    print(f"  throughput {record['requests_per_sec']:>12,.0f} req/s  "
          f"({record['requests_per_sec_per_core']:,.0f} req/s/core; "
          f"p50 {record['latency_p50_us']:,.0f}us, "
          f"p99 {record['latency_p99_us']:,.0f}us)")
    print(f"  pipelining lockstep {pipelining['unpipelined']:>10,.0f} req/s  "
          f"depth-{pipelining['depth']:.0f} {pipelining['pipelined']:>10,.0f} "
          f"req/s  (speedup {speedup:.2f}x, target >= "
          f"{NETWORK_PIPELINE_TARGET:g}x)")
    print(f"  decision equivalence on {record['equivalence_accesses']:,} "
          f"requests: {'identical' if record['decision_equivalent'] else 'DIVERGED'}")
    failed = []
    if speedup < NETWORK_PIPELINE_TARGET:
        failed.append(
            f"pipelining speedup {speedup:.2f}x below "
            f"{NETWORK_PIPELINE_TARGET:g}x at depth {pipelining['depth']:.0f}"
        )
    if not record["decision_equivalent"]:
        failed.append(
            "socket plane diverged from the in-process plane on the "
            "equivalence stream"
        )
    if failed:
        print("\nnetwork gate FAILED:")
        for reason in failed:
            print(f"  - {reason}")
        return 1
    print("network gate passed")
    return 0


#: Required fig4-grid speedup at 4 workers (hosts with >= 4 CPUs).
SCALING_TARGET = 2.0
SCALING_WORKERS = 4


def measure_parallel_scaling() -> dict:
    """Run the fabric scaling bench in-process; returns its record."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    bench_dir = str(REPO_ROOT / "benchmarks")
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from bench_parallel_scaling import measure

    return measure()


def check_parallel_scaling(record: dict | None = None) -> int:
    """Gate: the fig4 grid must scale >= 2x at 4 workers (4+ CPU hosts).

    The determinism cross-check is enforced unconditionally — identical
    hit rates at every worker count — because a fabric that returns
    different numbers is broken at any speed.
    """
    record = record if record is not None else measure_parallel_scaling()
    cpu_count = record["cpu_count"]
    speedup = record["speedup"][str(SCALING_WORKERS)]
    print(f"parallel scaling — {record['grid']} ({record['tasks']} tasks), "
          f"{cpu_count} cpu(s):")
    for workers, seconds in record["seconds"].items():
        print(f"  {workers} worker(s): {seconds:8.3f}s  "
              f"(speedup {record['speedup'][workers]:.2f}x)")
    if not record["deterministic"]:
        print("\nparallel-scaling gate FAILED: results differ across "
              "worker counts (determinism contract broken)")
        return 1
    if cpu_count < SCALING_WORKERS:
        print(f"parallel-scaling gate skipped: host has {cpu_count} cpu(s), "
              f"gate needs >= {SCALING_WORKERS} to be meaningful "
              "(measurement recorded)")
        return 0
    if speedup < SCALING_TARGET:
        print(f"\nparallel-scaling gate FAILED: speedup at "
              f"{SCALING_WORKERS} workers is {speedup:.2f}x "
              f"(target >= {SCALING_TARGET:.1f}x)")
        return 1
    print(f"parallel-scaling gate passed ({speedup:.2f}x at "
          f"{SCALING_WORKERS} workers)")
    return 0


#: Required replicated-vs-classic modeled throughput and spread ratios.
HOT_KEY_THROUGHPUT_TARGET = 2.0
HOT_KEY_SPREAD_TARGET = 0.5
#: shard-rate probe sizing (keys cycled / timing rounds)
RATE_PROBE_KEYS = 2_048
RATE_PROBE_SWEEPS = 8
RATE_PROBE_ROUNDS = 5


def _measure_shard_service_rate() -> float:
    """Best-of-N raw ``BackendCacheServer.get`` throughput on this host."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.cluster.backend import BackendCacheServer

    server = BackendCacheServer(
        "rate-probe", capacity_bytes=1 << 30, default_value_size=1
    )
    keys = [f"usertable:{i}" for i in range(RATE_PROBE_KEYS)]
    for key in keys:
        server.set(key, key)
    get = server.get
    ops = RATE_PROBE_KEYS * RATE_PROBE_SWEEPS
    best = float("inf")
    for _ in range(RATE_PROBE_ROUNDS):
        started = time.perf_counter()
        for _sweep in range(RATE_PROBE_SWEEPS):
            for key in keys:
                get(key)
        best = min(best, time.perf_counter() - started)
    return ops / best


def measure_hot_key() -> dict:
    """Run the single-hot-key pair and model both modes' cluster ops/s."""
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.experiments.common import Scale
    from repro.experiments.extension_hotkey import DEGREE, run_pair

    baseline, replicated = run_pair(Scale.smoke(), "single-hot-key")
    rate = _measure_shard_service_rate()

    def mode_record(metrics) -> dict:
        return {
            "total_gets": metrics.total_gets,
            "max_shard": metrics.max_shard,
            "spread": metrics.spread,
            "parallelism": metrics.parallelism,
            "modeled_ops_per_sec": rate * metrics.parallelism,
        }

    return {
        "scenario": "single-hot-key",
        "scale": "smoke",
        "degree": DEGREE,
        "shard_ops_per_sec": rate,
        "baseline": mode_record(baseline),
        "replicated": mode_record(replicated),
        "throughput_speedup": replicated.parallelism / baseline.parallelism,
        "spread_ratio": replicated.spread / baseline.spread,
        "replicated_reads": replicated.replicated_reads,
        "promotions": replicated.promotions,
    }


def check_hot_key(record: dict | None = None) -> int:
    """Gate: the replicated tier must actually break the shard ceiling."""
    record = record if record is not None else measure_hot_key()
    speedup = record["throughput_speedup"]
    spread_ratio = record["spread_ratio"]
    print(f"hot-key replication — {record['scenario']} "
          f"(R={record['degree']}, shard rate "
          f"{record['shard_ops_per_sec']:,.0f} ops/s):")
    for mode in ("baseline", "replicated"):
        m = record[mode]
        print(f"  {mode:10s} max shard {m['max_shard']:>8,}  "
              f"spread {m['spread']:5.2f}  "
              f"modeled {m['modeled_ops_per_sec']:>12,.0f} ops/s")
    print(f"  speedup  {speedup:5.2f}x  (target >= "
          f"{HOT_KEY_THROUGHPUT_TARGET:g}x)")
    print(f"  spread ratio {spread_ratio:5.2f}  (target <= "
          f"{HOT_KEY_SPREAD_TARGET:g})")
    failed = []
    if record["replicated_reads"] <= 0 or record["promotions"] <= 0:
        failed.append("the tier never promoted/served a replicated read")
    if speedup < HOT_KEY_THROUGHPUT_TARGET:
        failed.append(
            f"modeled throughput speedup {speedup:.2f}x below "
            f"{HOT_KEY_THROUGHPUT_TARGET:g}x"
        )
    if spread_ratio > HOT_KEY_SPREAD_TARGET:
        failed.append(
            f"max-shard spread ratio {spread_ratio:.2f} above "
            f"{HOT_KEY_SPREAD_TARGET:g}"
        )
    if failed:
        print("\nhot-key gate FAILED:")
        for reason in failed:
            print(f"  - {reason}")
        return 1
    print("hot-key gate passed")
    return 0


#: write-path gate targets: write-through may cost at most 1.5x
#: cache-aside wall-clock; write-behind must model >= 1.3x write-through
WRITE_THROUGH_OVERHEAD_TARGET = 1.5
WRITE_BEHIND_SPEEDUP_TARGET = 1.3
#: modeled storage RPC weight: one synchronous storage write costs this
#: many in-process op units (free in the testbed, dominant in the cloud)
STORAGE_RPC_WEIGHT = 10
WRITE_PROBE_OPS = 24_000
WRITE_PROBE_ROUNDS = 5
WRITE_PROBE_KEYS = 4_096
WRITE_READ_FRACTION = 0.5
WRITE_PROBE_DIRTY_LIMIT = 64
WRITE_PROBE_FLUSH_EVERY = 1_024


def _write_probe(mode: str) -> dict[str, float]:
    """Best-of-N wall-clock + modeled throughput of one write mode."""
    import dataclasses
    import random as _random

    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.cluster.client import FrontEndClient
    from repro.cluster.cluster import CacheCluster
    from repro.cluster.writepolicy import make_write_policy
    from repro.policies.registry import make_policy

    cluster = CacheCluster(num_servers=8, value_size=1)
    client = FrontEndClient(
        cluster, make_policy("cot", 512, tracker_capacity=2048)
    )
    policy = None
    if mode != "cache-aside":
        policy = make_write_policy(
            mode, dirty_limit=WRITE_PROBE_DIRTY_LIMIT
        )
        policy.bind_cluster(cluster)
        client.attach_write_policy(policy)
    rng = _random.Random(42)
    ops = [
        (
            f"usertable:{rng.randrange(WRITE_PROBE_KEYS)}",
            rng.random() < WRITE_READ_FRACTION,
        )
        for _ in range(WRITE_PROBE_OPS)
    ]
    flush_every = WRITE_PROBE_FLUSH_EVERY if mode == "write-behind" else 0

    def sweep() -> float:
        get, set_ = client.get, client.set
        started = time.perf_counter()
        for index, (key, is_read) in enumerate(ops, start=1):
            if is_read:
                get(key)
            else:
                set_(key, key)
            if flush_every and index % flush_every == 0:
                policy.flush()
        return time.perf_counter() - started

    sweep()  # warm the cache and the branch shapes
    stats_before = (
        None if policy is None else dataclasses.asdict(policy.stats)
    )
    best = min(sweep() for _ in range(WRITE_PROBE_ROUNDS))
    wall_ops = WRITE_PROBE_OPS / best
    # Foreground (acknowledged-path) storage writes per op, from the
    # strategy's own ledger over the timed rounds. Cache-aside and
    # write-through write storage synchronously on every set; write-behind
    # only on shard-down sync fallbacks (none here: no faults injected).
    writes = sum(1 for _key, is_read in ops if not is_read)
    if policy is None:
        foreground = writes * WRITE_PROBE_ROUNDS
    else:
        after = dataclasses.asdict(policy.stats)
        delta = lambda name: after[name] - stats_before[name]  # noqa: E731
        if mode == "write-behind":
            foreground = delta("sync_fallbacks")
        else:
            foreground = delta("storage_writes")
    per_op = foreground / (WRITE_PROBE_OPS * WRITE_PROBE_ROUNDS)
    modeled = wall_ops / (1.0 + STORAGE_RPC_WEIGHT * per_op)
    record = {
        "wall_ops_per_sec": wall_ops,
        "foreground_storage_writes_per_op": per_op,
        "modeled_ops_per_sec": modeled,
    }
    if policy is not None and mode == "write-behind":
        record["lost_writes"] = float(policy.stats.lost_writes)
        record["peak_dirty"] = float(policy.stats.peak_dirty)
    return record


def measure_write_path() -> dict:
    """Probe cache-aside / write-through / write-behind on one stream."""
    modes = ("cache-aside", "write-through", "write-behind")
    probes = {mode: _write_probe(mode) for mode in modes}
    aside = probes["cache-aside"]["wall_ops_per_sec"]
    through = probes["write-through"]["wall_ops_per_sec"]
    return {
        "read_fraction": WRITE_READ_FRACTION,
        "storage_rpc_weight": STORAGE_RPC_WEIGHT,
        "modes": probes,
        "write_through_overhead": aside / through if through else float("inf"),
        "write_behind_speedup": (
            probes["write-behind"]["modeled_ops_per_sec"]
            / probes["write-through"]["modeled_ops_per_sec"]
        ),
    }


def check_write_path(record: dict | None = None) -> int:
    """Gate: the strategy layer must stay cheap and write-behind must pay."""
    record = record if record is not None else measure_write_path()
    overhead = record["write_through_overhead"]
    speedup = record["write_behind_speedup"]
    print(f"write path — 50/50 mixed stream, "
          f"storage RPC weight S={record['storage_rpc_weight']}:")
    for mode, probe in record["modes"].items():
        print(f"  {mode:13s} wall {probe['wall_ops_per_sec']:>12,.0f} ops/s  "
              f"modeled {probe['modeled_ops_per_sec']:>12,.0f} ops/s  "
              f"(fg storage writes/op "
              f"{probe['foreground_storage_writes_per_op']:.3f})")
    print(f"  write-through overhead {overhead:5.2f}x  (target <= "
          f"{WRITE_THROUGH_OVERHEAD_TARGET:g}x)")
    print(f"  write-behind modeled speedup {speedup:5.2f}x  (target >= "
          f"{WRITE_BEHIND_SPEEDUP_TARGET:g}x)")
    behind = record["modes"]["write-behind"]
    failed = []
    if overhead > WRITE_THROUGH_OVERHEAD_TARGET:
        failed.append(
            f"write-through costs {overhead:.2f}x cache-aside "
            f"(allowed {WRITE_THROUGH_OVERHEAD_TARGET:g}x)"
        )
    if speedup < WRITE_BEHIND_SPEEDUP_TARGET:
        failed.append(
            f"write-behind modeled speedup {speedup:.2f}x below "
            f"{WRITE_BEHIND_SPEEDUP_TARGET:g}x"
        )
    if behind.get("lost_writes", 0.0):
        failed.append("write-behind lost acknowledged writes with no faults")
    if behind.get("peak_dirty", 0.0) > WRITE_PROBE_DIRTY_LIMIT:
        failed.append("write-behind dirty buffers exceeded their bound")
    if failed:
        print("\nwrite-path gate FAILED:")
        for reason in failed:
            print(f"  - {reason}")
        return 1
    print("write-path gate passed")
    return 0


def check_tracing_overhead(threshold: float) -> int:
    """Gate: traced throughput must stay within ``threshold`` of untraced."""
    metrics = measure_tracing_overhead()
    overhead = metrics["overhead_fraction"]
    print(
        f"tracing overhead on cot lookup+admit "
        f"(sample rate 1/{round(1 / metrics['sample_rate'])}):"
    )
    print(f"  untraced {metrics['untraced_ops_per_sec']:>14,.0f} ops/s")
    print(f"  traced   {metrics['traced_ops_per_sec']:>14,.0f} ops/s")
    blocks = ", ".join(f"{m:+.2%}" for m in metrics["block_medians"])
    print(f"  overhead {overhead:>+14.2%}  (threshold +{threshold:.0%}; "
          f"block medians {blocks})")
    if overhead > threshold:
        print("\ntracing-overhead gate FAILED")
        return 1
    print("tracing-overhead gate passed")
    return 0


def load_entries() -> list[dict]:
    if not BENCH_FILE.exists():
        return []
    return json.loads(BENCH_FILE.read_text(encoding="utf-8")).get("entries", [])


def save_entries(entries: list[dict]) -> None:
    payload = {
        "suite": SUITE,
        "metric": "ops_per_sec (ops_per_round / min round time)",
        "entries": entries,
    }
    BENCH_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def record(label: str) -> None:
    results = run_suite_best()
    scaling = measure_parallel_scaling()
    hot_key = measure_hot_key()
    write_path = measure_write_path()
    adaptive = measure_adaptive()
    network = measure_network()
    entries = load_entries()
    entries.append(
        {
            "label": label,
            "recorded_utc": _dt.datetime.now(_dt.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "results": results,
            "parallel_scaling": scaling,
            "hot_key": hot_key,
            "write_path": write_path,
            "adaptive": adaptive,
            "network": network,
        }
    )
    save_entries(entries)
    print(f"recorded entry {label!r} -> {BENCH_FILE.relative_to(REPO_ROOT)}")
    for name, metrics in sorted(results.items()):
        print(f"  {name:45s} {metrics['ops_per_sec']:>14,.0f} ops/s")
    for workers, seconds in scaling["seconds"].items():
        print(f"  parallel_scaling[{workers}w]{'':26s} {seconds:>10.3f}s "
              f"({scaling['speedup'][workers]:.2f}x)")
    print(f"  hot_key speedup {hot_key['throughput_speedup']:.2f}x, "
          f"spread ratio {hot_key['spread_ratio']:.2f}")
    print(f"  write_path through overhead "
          f"{write_path['write_through_overhead']:.2f}x, behind modeled "
          f"speedup {write_path['write_behind_speedup']:.2f}x")
    print(f"  adaptive shadow overhead "
          f"{adaptive['overhead']['overhead_fraction']:+.2%}, converged "
          + ", ".join(
              f"{name}={'yes' if all(s['converged']) else 'NO'}"
              for name, s in adaptive["scenarios"].items()
          ))
    print(f"  network {network['requests_per_sec']:,.0f} req/s "
          f"({network['requests_per_sec_per_core']:,.0f} req/s/core), "
          f"pipelining {network['pipelining']['speedup']:.2f}x, "
          f"equivalence "
          f"{'ok' if network['decision_equivalent'] else 'DIVERGED'}")


def check(threshold: float, against: str | None, overhead_threshold: float) -> int:
    entries = load_entries()
    if not entries:
        raise SystemExit(
            f"{BENCH_FILE.name} has no recorded entries; run the gate in "
            "record mode first (python benchmarks/run_perf_gate.py)"
        )
    if against is None:
        baseline = entries[-1]
    else:
        matches = [e for e in entries if e["label"] == against]
        if not matches:
            raise SystemExit(f"no recorded entry labelled {against!r}")
        baseline = matches[-1]
    current = run_suite()
    for _ in range(SUITE_BLOCKS - 1):
        if not _suite_failures(baseline, current, threshold):
            break
        # an apparent regression may be a noisy-neighbour burst that
        # spanned the whole session: merge another independent run and
        # re-judge (a real regression stays under threshold every time)
        for name, metrics in run_suite().items():
            prev = current.get(name)
            if prev is None or metrics["ops_per_sec"] > prev["ops_per_sec"]:
                current[name] = metrics
    failures: list[str] = []
    print(f"comparing against entry {baseline['label']!r} "
          f"(recorded {baseline['recorded_utc']}), threshold -{threshold:.0%}")
    for name, base_metrics in sorted(baseline["results"].items()):
        base_ops = base_metrics["ops_per_sec"]
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: benchmark disappeared from the suite")
            continue
        ratio = now["ops_per_sec"] / base_ops if base_ops else 1.0
        verdict = "ok"
        if ratio < 1.0 - threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {now['ops_per_sec']:,.0f} ops/s vs "
                f"{base_ops:,.0f} baseline ({ratio:.2f}x)"
            )
        print(f"  {name:45s} {ratio:>6.2f}x  {verdict}")
    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf gate passed\n")
    status = check_parallel_scaling()
    if status:
        return status
    print()
    status = check_hot_key()
    if status:
        return status
    print()
    status = check_write_path()
    if status:
        return status
    print()
    status = check_tracing_overhead(overhead_threshold)
    if status:
        return status
    print()
    status = check_adaptive()
    if status:
        return status
    print()
    return check_network()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default="current",
        help="label stored with the recorded entry (record mode)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare a fresh run against the committed baseline and fail "
        "on regression instead of recording",
    )
    parser.add_argument(
        "--against",
        default=None,
        help="baseline entry label for --check (default: latest entry)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop before failing (default 0.25)",
    )
    parser.add_argument(
        "--tracing-overhead",
        action="store_true",
        help="run only the traced-vs-untraced overhead gate",
    )
    parser.add_argument(
        "--parallel-scaling",
        action="store_true",
        help="run only the parallel-fabric scaling gate",
    )
    parser.add_argument(
        "--hot-key",
        action="store_true",
        help="run only the hot-key replication gate (replicated vs classic "
        "single-hot-key pair)",
    )
    parser.add_argument(
        "--write-path",
        action="store_true",
        help="run only the write-path gate (cache-aside vs write-through "
        "wall clock; write-through vs write-behind modeled throughput)",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="run only the adaptive-arbitration gate (shadow-cache overhead "
        "on the serving hot path with the live policy pinned; convergence "
        "to the best fixed policy on every ext-adaptive scenario)",
    )
    parser.add_argument(
        "--network",
        action="store_true",
        help="run only the network-plane gate (closed-loop socket harness "
        "throughput, pipelining speedup at depth 32, two-plane decision "
        "equivalence)",
    )
    parser.add_argument(
        "--overhead-threshold",
        type=float,
        default=0.05,
        help="allowed fractional slowdown from an attached low-rate tracer "
        "on the cot lookup+admit hot path (default 0.05)",
    )
    args = parser.parse_args()
    if args.parallel_scaling:
        return check_parallel_scaling()
    if args.hot_key:
        return check_hot_key()
    if args.write_path:
        return check_write_path()
    if args.tracing_overhead:
        return check_tracing_overhead(args.overhead_threshold)
    if args.adaptive:
        return check_adaptive()
    if args.network:
        return check_network()
    if args.check:
        return check(args.threshold, args.against, args.overhead_threshold)
    record(args.label)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
