#!/usr/bin/env python
"""Headless perf-regression gate over the data-plane micro-benchmarks.

Runs the ``bench_ops_throughput`` suite under pytest-benchmark without any
interactive output and records per-bench throughput in ``BENCH_ops.json``
at the repository root, so every PR leaves a comparable performance
trajectory behind.

Modes
-----
Record (default)::

    python benchmarks/run_perf_gate.py --label fastpath

appends one entry (label, timestamp, per-bench ops/s) to ``BENCH_ops.json``.

Check::

    python benchmarks/run_perf_gate.py --check

re-runs the suite and fails (exit 1) when any benchmark's throughput drops
more than ``--threshold`` (default 25%) below the most recent committed
entry — the invocation CI wires in front of merges. ``--against LABEL``
compares to a specific recorded entry instead of the latest.

Throughput is reported as operations per second: pytest-benchmark's
``1 / mean-round-time`` scaled by the bench's ``ops_per_round`` extra-info
when present (the policy/ sketch loops run 2000 ops per timed round).
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_ops.json"
SUITE = "benchmarks/bench_ops_throughput.py"


def run_suite() -> dict[str, dict[str, float]]:
    """Run the suite headlessly; returns ``{bench_name: {metrics}}``."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                SUITE,
                "--benchmark-only",
                f"--benchmark-json={json_path}",
                "-q",
                "--no-header",
                "-p",
                "no:cacheprovider",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0 or not json_path.exists():
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit(f"benchmark suite failed (exit {proc.returncode})")
        raw = json.loads(json_path.read_text(encoding="utf-8"))
    results: dict[str, dict[str, float]] = {}
    for bench in raw["benchmarks"]:
        mean = bench["stats"]["mean"]
        ops_per_round = bench.get("extra_info", {}).get("ops_per_round", 1)
        results[bench["name"]] = {
            "mean_round_s": mean,
            "ops_per_round": ops_per_round,
            "ops_per_sec": ops_per_round / mean if mean else 0.0,
        }
    return results


def load_entries() -> list[dict]:
    if not BENCH_FILE.exists():
        return []
    return json.loads(BENCH_FILE.read_text(encoding="utf-8")).get("entries", [])


def save_entries(entries: list[dict]) -> None:
    payload = {
        "suite": SUITE,
        "metric": "ops_per_sec (ops_per_round / mean round time)",
        "entries": entries,
    }
    BENCH_FILE.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def record(label: str) -> None:
    results = run_suite()
    entries = load_entries()
    entries.append(
        {
            "label": label,
            "recorded_utc": _dt.datetime.now(_dt.timezone.utc).isoformat(
                timespec="seconds"
            ),
            "results": results,
        }
    )
    save_entries(entries)
    print(f"recorded entry {label!r} -> {BENCH_FILE.relative_to(REPO_ROOT)}")
    for name, metrics in sorted(results.items()):
        print(f"  {name:45s} {metrics['ops_per_sec']:>14,.0f} ops/s")


def check(threshold: float, against: str | None) -> int:
    entries = load_entries()
    if not entries:
        raise SystemExit(
            f"{BENCH_FILE.name} has no recorded entries; run the gate in "
            "record mode first (python benchmarks/run_perf_gate.py)"
        )
    if against is None:
        baseline = entries[-1]
    else:
        matches = [e for e in entries if e["label"] == against]
        if not matches:
            raise SystemExit(f"no recorded entry labelled {against!r}")
        baseline = matches[-1]
    current = run_suite()
    failures: list[str] = []
    print(f"comparing against entry {baseline['label']!r} "
          f"(recorded {baseline['recorded_utc']}), threshold -{threshold:.0%}")
    for name, base_metrics in sorted(baseline["results"].items()):
        base_ops = base_metrics["ops_per_sec"]
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: benchmark disappeared from the suite")
            continue
        ratio = now["ops_per_sec"] / base_ops if base_ops else 1.0
        verdict = "ok"
        if ratio < 1.0 - threshold:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {now['ops_per_sec']:,.0f} ops/s vs "
                f"{base_ops:,.0f} baseline ({ratio:.2f}x)"
            )
        print(f"  {name:45s} {ratio:>6.2f}x  {verdict}")
    if failures:
        print("\nperf gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf gate passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default="current",
        help="label stored with the recorded entry (record mode)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare a fresh run against the committed baseline and fail "
        "on regression instead of recording",
    )
    parser.add_argument(
        "--against",
        default=None,
        help="baseline entry label for --check (default: latest entry)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop before failing (default 0.25)",
    )
    args = parser.parse_args()
    if args.check:
        return check(args.threshold, args.against)
    record(args.label)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
