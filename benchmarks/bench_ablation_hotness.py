"""Ablation: the dual-cost hotness model (Equation 1).

DESIGN.md decision #3: update accesses *subtract* hotness so frequently
updated keys — whose cached copies are invalidated on every write — stop
qualifying for the small cache. The ablation compares the dual-cost model
(u_w = 1) against a read-only model (u_w = 0) on a workload where half
of the hot keys are write-hot: the dual-cost cache should waste fewer
insertions on keys that immediately get invalidated.
"""

from __future__ import annotations

import random

from repro.core.cache import CoTCache
from repro.core.hotness import HotnessModel
from repro.policies.base import MISSING


def _run(update_weight: float, operations: int, seed: int = 5) -> CoTCache:
    cache = CoTCache(
        8,
        tracker_capacity=64,
        model=HotnessModel(read_weight=1.0, update_weight=update_weight),
    )
    rng = random.Random(seed)
    # 16 hot keys; the odd ones are update-heavy (50% of their accesses
    # are writes), the even ones are read-only. Long uniform tail behind.
    population = list(range(200))
    weights = [8.0 if i < 16 else 1.0 for i in population]
    for _ in range(operations):
        key = rng.choices(population, weights)[0]
        write_hot = key < 16 and key % 2 == 1 and rng.random() < 0.5
        if write_hot:
            cache.record_update(key)
            continue
        if cache.lookup(key) is MISSING:
            cache.admit(key, key)
    return cache


def bench_ablation_dual_cost_hotness(benchmark):
    operations = 80_000

    def run_both():
        return _run(1.0, operations), _run(0.0, operations)

    dual, read_only = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["hit_rate_dual_cost"] = round(dual.stats.hit_rate, 4)
    benchmark.extra_info["hit_rate_read_only"] = round(read_only.stats.hit_rate, 4)
    benchmark.extra_info["invalidations_dual"] = dual.stats.invalidations
    benchmark.extra_info["invalidations_read_only"] = read_only.stats.invalidations

    # The dual-cost model keeps write-hot keys out of the cache, so fewer
    # cached copies get torn down by updates...
    assert dual.stats.invalidations <= read_only.stats.invalidations
    # ...and read hit rate does not suffer for it.
    assert dual.stats.hit_rate >= read_only.stats.hit_rate - 0.01
