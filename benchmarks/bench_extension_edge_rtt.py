"""Benchmark + regeneration of the edge-RTT sensitivity extension.

Asserts the paper's deployment claim quantitatively: the absolute
runtime saving from a front-end CoT cache grows monotonically as the
front-end↔back-end RTT stretches from same-cluster (244 µs) to
edge-datacenter (tens of ms) distances.
"""

from __future__ import annotations

from repro.engine import Scale
from repro.experiments import extension_edge_rtt


def bench_extension_edge_rtt(benchmark, record_result):
    scale = Scale.smoke().scaled(name="bench")
    result = benchmark.pedantic(
        lambda: extension_edge_rtt.run(scale),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    savings = result.column("absolute_saving_s")
    assert savings == sorted(savings), "absolute gain must grow with RTT"
    assert savings[-1] > 20 * savings[0]
    reductions = result.column("reduction_%")
    assert min(reductions) > 10.0
    benchmark.extra_info["saving_at_paper_rtt_s"] = savings[0]
    benchmark.extra_info["saving_at_40ms_s"] = savings[-1]
