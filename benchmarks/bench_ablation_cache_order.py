"""Ablation: hotness-ordered eviction vs LRU eviction behind CoT's filter.

DESIGN.md decision #1: CoT maintains the cache as a min-heap on hotness,
so the eviction victim is always the *coldest* cached key (exact top-C).
:class:`~repro.policies.tracked_lru.TrackedLRUCache` keeps the identical
admission filter but evicts by recency. The gap between the two isolates
what hotness-ordered eviction itself is worth.
"""

from __future__ import annotations

from repro.core.cache import CoTCache
from repro.engine import (
    PolicySpec,
    PolicyStreamRunner,
    Scale,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.policies.tracked_lru import TrackedLRUCache
from repro.workloads.zipfian import ZipfianGenerator


def _hit_rate(policy, accesses: int) -> float:
    spec = ScenarioSpec(
        scale=Scale.smoke().scaled(name="bench", key_space=50_000, accesses=accesses),
        workload=WorkloadSpec(
            generator_factory=lambda _i: ZipfianGenerator(
                50_000, theta=0.99, seed=21
            )
        ),
        policy=PolicySpec(factory=lambda _i: policy),
    )
    return PolicyStreamRunner().run(spec).telemetry.hit_rate


def bench_ablation_cache_order(benchmark):
    capacity, tracker, accesses = 32, 256, 120_000

    def run_both() -> tuple[float, float]:
        cot = CoTCache(capacity, tracker_capacity=tracker)
        lru_ordered = TrackedLRUCache(capacity, tracker_capacity=tracker)
        return (
            _hit_rate(cot, accesses),
            _hit_rate(lru_ordered, accesses),
        )

    cot_rate, lru_rate = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["hit_rate_hotness_order"] = round(cot_rate, 4)
    benchmark.extra_info["hit_rate_lru_order"] = round(lru_rate, 4)
    # The admission filter does most of the work, but exact top-C
    # eviction must not lose to recency eviction on a stable skew.
    assert cot_rate >= lru_rate - 0.005
