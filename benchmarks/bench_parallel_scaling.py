"""Parallel-fabric scaling: fig4-grid wall-clock vs worker count.

Measures the wall-clock of one Figure 4 hit-rate grid (cache-size ×
policy at Zipf 0.99, smoke scale) through ``map_specs`` at 1, 2 and 4
workers, and reports the speedup relative to the 1-worker (in-process
sequential) run. The pool is spawn-started and import-warmed before
timing so one-time interpreter startup stays out of the steady-state
numbers.

Run directly (``PYTHONPATH=src python benchmarks/bench_parallel_scaling.py``)
for a human-readable table, or through ``run_perf_gate.py``, which
records the measurement in ``BENCH_ops.json`` and — on hosts with at
least 4 CPUs — gates ``speedup@4 >= 2.0``. On smaller hosts the numbers
are still recorded (with the host's ``cpu_count``) but the gate is
skipped: process fan-out cannot beat sequential without cores to fan to.

Determinism cross-check included: every worker count must produce the
identical hit-rate vector (the fabric's invariance contract), so a
scaling win can never come from doing different work.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.engine import PolicySpec, Scale, ScenarioSpec, WorkloadSpec
from repro.engine.parallel import map_specs, parallel_workers, warm_pool
from repro.policies.registry import POLICY_NAMES

__all__ = ["WORKER_COUNTS", "build_grid", "measure"]

WORKER_COUNTS = (1, 2, 4)
#: Figure 4's smoke-scale sweep points (powers of two, 2 → 128).
GRID_SIZES = (2, 8, 32, 128)
THETA = 0.99
TRACKER_RATIO = 8


def build_grid(scale: Scale | None = None) -> list[ScenarioSpec]:
    """The fig4 cache-size × policy grid at smoke scale (one spec/cell)."""
    scale = scale or Scale.smoke()
    return [
        ScenarioSpec(
            scale=scale,
            workload=WorkloadSpec(dist=f"zipf-{THETA:g}"),
            policy=PolicySpec(
                name=name,
                cache_lines=size,
                tracker_lines=TRACKER_RATIO * size,
            ),
        )
        for size in GRID_SIZES
        for name in POLICY_NAMES
    ]


def measure() -> dict[str, Any]:
    """Time the grid at each worker count; returns the scaling record.

    The record carries everything the perf gate needs to decide and
    everything a reader needs to interpret it: per-worker-count seconds,
    speedups vs the sequential run, the host's cpu count, and whether the
    hit-rate vectors matched across counts.
    """
    specs = build_grid()
    seconds: dict[str, float] = {}
    results: dict[int, list[float]] = {}
    for workers in WORKER_COUNTS:
        with parallel_workers(workers):
            warm_pool()
            started = time.perf_counter()
            snapshots = map_specs("policy", specs)
            seconds[str(workers)] = round(time.perf_counter() - started, 4)
        results[workers] = [snap.hit_rate for snap in snapshots]
    base = seconds["1"]
    speedup = {
        w: round(base / seconds[w], 3) if seconds[w] else 0.0 for w in seconds
    }
    return {
        "grid": f"fig4 smoke {len(GRID_SIZES)}x{len(POLICY_NAMES)}",
        "tasks": len(specs),
        "cpu_count": os.cpu_count() or 1,
        "seconds": seconds,
        "speedup": speedup,
        "deterministic": all(
            results[w] == results[WORKER_COUNTS[0]] for w in WORKER_COUNTS
        ),
    }


def main() -> int:
    record = measure()
    print(f"parallel scaling — {record['grid']} ({record['tasks']} tasks), "
          f"{record['cpu_count']} cpu(s)")
    for workers in WORKER_COUNTS:
        w = str(workers)
        print(f"  {workers} worker(s): {record['seconds'][w]:8.3f}s  "
              f"(speedup {record['speedup'][w]:.2f}x)")
    print(f"  deterministic across counts: {record['deterministic']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
