"""Benchmark + regeneration of Table 2 (minimum lines to balance).

The slowest harness (many full-cluster trials); runs at the tiny bench
scale and asserts the paper's qualitative result: CoT reaches the target
with no more cache-lines than any other policy on every distribution,
and strictly fewer than LRU somewhere.
"""

from __future__ import annotations

from repro.experiments import table2_min_cache


def bench_table2_min_cache(benchmark, tiny_scale, record_result):
    result = benchmark.pedantic(
        lambda: table2_min_cache.run(tiny_scale),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    header = result.headers
    lru_idx, cot_idx = header.index("lru"), header.index("cot")
    strictly_better_somewhere = False
    for row in result.rows:
        lru, cot = row[lru_idx], row[cot_idx]
        if isinstance(lru, int) and isinstance(cot, int):
            assert cot <= lru
            if cot < lru:
                strictly_better_somewhere = True
    assert strictly_better_somewhere
