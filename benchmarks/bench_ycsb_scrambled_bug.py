"""Benchmark + regeneration of the ScrambledZipfian bug finding.

Asserts both halves of the paper's report: the scrambled generator's
delivered skew is far below the honest Zipfian's, and it ignores the
requested skew parameter entirely.
"""

from __future__ import annotations

from repro.experiments import ycsb_bug


def bench_ycsb_scrambled_bug(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: ycsb_bug.run(bench_scale),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    honest_fits = result.column("fitted_s_zipfian")
    scrambled_fits = result.column("fitted_s_scrambled")
    # Honest fits move with the requested skew; scrambled fits do not.
    assert honest_fits == sorted(honest_fits)
    assert max(honest_fits) - min(honest_fits) > 0.2
    assert max(scrambled_fits) - min(scrambled_fits) < 0.01
    # And scrambled is always less skewed than honest.
    for honest, scrambled in zip(honest_fits, scrambled_fits):
        assert scrambled < honest
