"""Ablation: Algorithm 1's "benefit of the doubt" hotness inheritance.

DESIGN.md decision #2: when space-saving evicts a tracked key, the
newcomer inherits the victim's hotness. This is what gives every new key
a chance to survive immediate re-eviction — but it also means cold keys
enter the tracker with inflated scores. This bench quantifies the choice
on a moderately skewed workload where the tracker is under pressure
(key space ≫ tracker).

Space-saving's guarantees *require* inheritance; disabling it degrades
the tracker toward frequency-counting with random resets. The bench
asserts inheritance never hurts and records both hit rates.
"""

from __future__ import annotations

from repro.core.cache import CoTCache
from repro.engine import (
    PolicySpec,
    PolicyStreamRunner,
    Scale,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.workloads.zipfian import ZipfianGenerator


def _hit_rate(inherit: bool, accesses: int) -> float:
    spec = ScenarioSpec(
        scale=Scale.smoke().scaled(name="bench", key_space=50_000, accesses=accesses),
        workload=WorkloadSpec(
            generator_factory=lambda _i: ZipfianGenerator(50_000, theta=0.9, seed=77)
        ),
        policy=PolicySpec(
            factory=lambda _i: CoTCache(
                32, tracker_capacity=256, inherit_hotness=inherit
            )
        ),
    )
    return PolicyStreamRunner().run(spec).telemetry.hit_rate


def bench_ablation_hotness_inheritance(benchmark):
    accesses = 120_000

    def run_both() -> tuple[float, float]:
        return _hit_rate(True, accesses), _hit_rate(False, accesses)

    with_inherit, without_inherit = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    benchmark.extra_info["hit_rate_inherit"] = round(with_inherit, 4)
    benchmark.extra_info["hit_rate_no_inherit"] = round(without_inherit, 4)
    # Inheritance must not hurt on skewed workloads (it is what lets a
    # genuinely hot newcomer out-live the tracker churn).
    assert with_inherit >= without_inherit - 0.01
