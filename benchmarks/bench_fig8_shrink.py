"""Benchmark + regeneration of Figure 8 (elastic shrinking).

After converging on Zipfian 1.2 the workload flips to uniform; the front
end must detect the quality collapse, reset the tracker ratio, and halve
its way down to negligible sizes without violating the target.
"""

from __future__ import annotations

from repro.engine import Scale
from repro.experiments import fig78_adaptive_resizing


def bench_fig8_shrink(benchmark, record_result):
    scale = Scale.smoke().scaled(name="bench", accesses=400_000, num_clients=1)
    result = benchmark.pedantic(
        lambda: fig78_adaptive_resizing.run_shrink(scale),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    caches = result.column("cache")
    decisions = result.column("decision")
    # The cache shrank substantially from its converged size...
    assert result.extras["final_cache"] <= max(caches) // 4
    # ...via the shrink path (ratio reset and/or halving decisions).
    assert "shrink" in decisions or "reset_ratio" in decisions
    benchmark.extra_info["peak_cache"] = max(caches)
    benchmark.extra_info["final_cache"] = result.extras["final_cache"]
