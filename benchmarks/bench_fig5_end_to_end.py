"""Benchmark + regeneration of Figure 5 (20-client end-to-end runtime).

Asserts the paper's shapes: without front-end caches skew inflates
runtime dramatically (ordering uniform < Zipf 0.99 < Zipf 1.2); a small
CoT cache removes most of the skewed-workload penalty; and on uniform
workloads front-end caches cost nothing measurable.
"""

from __future__ import annotations

from repro.experiments import fig5_end_to_end


def _runtime(cell: str) -> float:
    return float(cell.split("±")[0])


def bench_fig5_end_to_end(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: fig5_end_to_end.run(bench_scale, repetitions=2),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    rows = {row[0]: row for row in result.rows}
    uniform_idx = result.headers.index("uniform")
    z99_idx = result.headers.index("zipf-0.99")
    z12_idx = result.headers.index("zipf-1.2")

    none_uniform = _runtime(rows["none"][uniform_idx])
    none_z99 = _runtime(rows["none"][z99_idx])
    none_z12 = _runtime(rows["none"][z12_idx])
    # Ordering uniform < 0.99 < 1.2 without caches (paper: 1x/8.9x/12.27x).
    assert none_uniform < none_z99 < none_z12
    benchmark.extra_info["no_cache_ratios"] = {
        "zipf-0.99": round(none_z99 / none_uniform, 2),
        "zipf-1.2": round(none_z12 / none_uniform, 2),
    }

    # CoT removes most of the skew penalty (paper: ~70%/88% reductions).
    cot_z12 = _runtime(rows["cot"][z12_idx])
    assert cot_z12 < 0.5 * none_z12

    # Uniform: caches add no measurable overhead (within 5%).
    cot_uniform = _runtime(rows["cot"][uniform_idx])
    assert cot_uniform < 1.05 * none_uniform
