"""Benchmark + regeneration of the decay extension experiment.

Asserts the extension's claim: under hot-set rotation, enabling decay
(half-life or exponential) never hurts and typically recovers hit rate
faster after each trend change than the no-decay configuration.
"""

from __future__ import annotations

from repro.engine import Scale
from repro.experiments import extension_decay


def bench_extension_decay(benchmark, record_result):
    scale = Scale.smoke().scaled(name="bench", accesses=120_000, num_clients=1)
    result = benchmark.pedantic(
        lambda: extension_decay.run(scale, rotations=4),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    rates = dict(zip(result.column("decay"), result.column("hit_rate_%")))
    post = dict(
        zip(result.column("decay"), result.column("post_rotation_hit_rate_%"))
    )
    benchmark.extra_info["hit_rates"] = rates
    # Decay variants must not lose to no-decay under rotation...
    assert rates["half_life"] >= rates["none"] - 0.5
    assert rates["exponential"] >= rates["none"] - 0.5
    # ...and at least one must win the post-rotation recovery window.
    assert max(post["half_life"], post["exponential"]) >= post["none"]
