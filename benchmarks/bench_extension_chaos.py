"""Benchmark + regeneration of the chaos extension experiment.

Asserts the fault-tolerance acceptance criteria: a chaos run that kills
1 of 4 shards (then revives it, replaces another, and makes a third
flaky) completes without exceptions, serves every read correctly via
storage fallback, reports a nonzero degraded-read count, and the elastic
controller issues no resize attributable to the dead shard's zero-load
entry (no EXPAND while a shard is down, no phantom I_c spike).
"""

from __future__ import annotations

from repro.engine import Scale
from repro.experiments import extension_chaos


def bench_extension_chaos(benchmark, record_result):
    scale = Scale.smoke().scaled(
        name="bench", accesses=120_000, num_clients=1, num_servers=4
    )
    result = benchmark.pedantic(
        lambda: extension_chaos.run(scale, num_servers=4),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)
    benchmark.extra_info["resilience"] = result.extras["resilience"]

    # Every read verified against authoritative storage — the outage must
    # be invisible to correctness.
    assert result.extras["incorrect_reads"] == 0
    # The outage must be *visible* to the instrumentation: reads served
    # by storage fallback while the shard was down.
    assert result.extras["degraded_reads"] > 0
    # Churn-safe accounting: no phantom I_c epoch anywhere in the run and
    # no EXPAND riding one (the zero-load bug produced ratios in the
    # hundreds; genuine readings stay in low single digits).
    assert result.extras["spurious_expands"] == 0
    assert result.extras["phantom_epochs"] == 0
    assert result.extras["churn_max_imbalance"] < 5.0
    # The breaker actually cycled: opened during the outage, re-closed
    # after the cold revival's successful probe.
    resilience = result.extras["resilience"]
    assert resilience["breaker_opens"] > 0
    assert resilience["breaker_closes"] > 0
