"""Shared fixtures for the benchmark harness.

Every table/figure in the paper has a ``bench_*`` module here. Each bench
runs its experiment once under pytest-benchmark timing (``pedantic`` with
a single round — experiments are second-scale, not microsecond-scale),
stores the regenerated rows in ``benchmark.extra_info`` and writes the
rendered table to ``benchmarks/output/<experiment>.txt`` so the artifact
survives the run. Micro-benchmarks (``bench_ops_throughput``) use normal
multi-round timing.

Scales: benches default to a benchmark-friendly scale so
``pytest benchmarks/ --benchmark-only`` completes in minutes. Regenerate
publication-scale numbers with ``python -m repro.experiments all``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.engine import Scale
from repro.experiments.common import ExperimentResult

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_scale() -> Scale:
    """The sizing used across benches (seconds-scale per experiment)."""
    return Scale.smoke().scaled(name="bench")


@pytest.fixture(scope="session")
def tiny_scale() -> Scale:
    """For the slowest sweeps (table2's many trials)."""
    return Scale.smoke().scaled(
        name="bench-tiny", key_space=10_000, accesses=30_000, num_clients=2
    )


@pytest.fixture()
def record_result():
    """Persist an ExperimentResult next to the benchmark timings."""

    def _record(benchmark, result: ExperimentResult) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n", encoding="utf-8")
        benchmark.extra_info["experiment"] = result.experiment_id
        benchmark.extra_info["rows"] = len(result.rows)
        benchmark.extra_info["table_path"] = str(path)

    return _record
