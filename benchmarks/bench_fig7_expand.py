"""Benchmark + regeneration of Figure 7 (elastic expansion).

Runs the elastic front end from the paper's deliberately tiny start
(C=2/K=4) against a Zipfian 1.2 workload and asserts the two-phase
behaviour: tracker ratio discovered first, then cache doubled until the
load-imbalance target holds, with alpha_t captured at convergence.

At the ``default`` CLI scale this reproduces the paper's exact endpoint
(C=512, K=2048, alpha_t ≈ 7.8); the bench scale checks the shape.
"""

from __future__ import annotations

from repro.engine import Scale
from repro.experiments import fig78_adaptive_resizing


def bench_fig7_expand(benchmark, record_result):
    # Enough accesses for both phases to complete at a small key space.
    scale = Scale.smoke().scaled(name="bench", accesses=400_000, num_clients=1)
    result = benchmark.pedantic(
        lambda: fig78_adaptive_resizing.run_expand(scale),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    caches = result.column("cache")
    trackers = result.column("tracker")
    decisions = result.column("decision")
    # Phase 1 ran: the tracker was probed at fixed cache size.
    assert "double_tracker" in decisions
    # Phase 2 ran: the cache expanded from its tiny start.
    assert result.extras["final_cache"] > 2
    # K >= 2C is maintained throughout.
    for cache, tracker in zip(caches, trackers):
        assert tracker >= 2 * cache
    # alpha_t was captured once the target held.
    assert "target_reached" in decisions
    benchmark.extra_info["final_sizes"] = (
        result.extras["final_cache"],
        result.extras["final_tracker"],
    )
    benchmark.extra_info["alpha_target"] = round(result.extras["alpha_target"], 2)
