"""Benchmark + regeneration of Figure 3 (cache-size sweep).

Regenerates the load-imbalance and relative-server-load series as the
front-end CoT cache grows, and asserts the paper's shape: imbalance
collapses within the first few doublings while further doublings buy
little extra load reduction.
"""

from __future__ import annotations

from repro.experiments import fig3_cache_size_sweep


def bench_fig3_cache_size_sweep(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: fig3_cache_size_sweep.run(bench_scale),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    imbalance = result.column("load_imbalance")
    relative = result.column("relative_server_load")
    # Paper shape 1: imbalance drops by an order of magnitude with a
    # small cache (16.26 -> 1.44 by 64 lines in the paper).
    assert imbalance[0] > 5 * imbalance[-1]
    # Paper shape 2: diminishing returns — the last doubling reduces
    # relative load far less than the first one did.
    first_gain = relative[0] - relative[1]
    last_gain = relative[-2] - relative[-1]
    assert first_gain > 3 * last_gain
