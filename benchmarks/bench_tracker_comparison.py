"""Design-choice benchmark: space-saving vs Count-Min top-k tracking.

The paper adopts space-saving for CoT's tracker; the standard
alternative is a Count-Min Sketch with a candidate heap. This bench
compares both at equal counter memory on the paper's workload family and
records recall of the true top-k plus per-op cost — the quantitative
grounds for the paper's (and this reproduction's) choice.
"""

from __future__ import annotations

from collections import Counter

from repro.core.countmin import CMSTopK
from repro.core.spacesaving import SpaceSaving
from repro.workloads.zipfian import ZipfianGenerator

K = 16
BUDGET_CELLS = 256
STREAM = 60_000
KEY_SPACE = 20_000
THETA = 0.9


def _recall(found, truth) -> float:
    return len(set(found) & set(truth)) / len(truth)


def bench_tracker_recall_comparison(benchmark):
    stream = list(ZipfianGenerator(KEY_SPACE, theta=THETA, seed=11).keys(STREAM))
    true_top = [key for key, _ in Counter(stream).most_common(K)]

    def run_both() -> tuple[float, float]:
        ss: SpaceSaving[int] = SpaceSaving(BUDGET_CELLS // 2)
        cms: CMSTopK[int] = CMSTopK(
            K, width=(BUDGET_CELLS - K) // 4, depth=4, seed=12
        )
        for key in stream:
            ss.offer(key)
            cms.offer(key)
        return (
            _recall([e.key for e in ss.top(K)], true_top),
            _recall([key for key, _ in cms.top(K)], true_top),
        )

    ss_recall, cms_recall = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info["spacesaving_recall"] = round(ss_recall, 3)
    benchmark.extra_info["cms_recall"] = round(cms_recall, 3)
    benchmark.extra_info["budget_cells"] = BUDGET_CELLS
    # The paper's choice holds: per unit memory at tracker-typical sizes,
    # space-saving recalls the true heavy hitters at least as well.
    assert ss_recall >= cms_recall


def bench_spacesaving_op(benchmark):
    stream = list(ZipfianGenerator(KEY_SPACE, theta=THETA, seed=13).keys(20_000))
    sketch: SpaceSaving[int] = SpaceSaving(BUDGET_CELLS // 2)
    cursor = [0]

    def run():
        start = cursor[0] % (len(stream) - 2000)
        for key in stream[start:start + 2000]:
            sketch.offer(key)
        cursor[0] += 2000

    benchmark(run)


def bench_cms_topk_op(benchmark):
    stream = list(ZipfianGenerator(KEY_SPACE, theta=THETA, seed=13).keys(20_000))
    tracker: CMSTopK[int] = CMSTopK(K, width=(BUDGET_CELLS - K) // 4, depth=4)
    cursor = [0]

    def run():
        start = cursor[0] % (len(stream) - 2000)
        for key in stream[start:start + 2000]:
            tracker.offer(key)
        cursor[0] += 2000

    benchmark(run)
