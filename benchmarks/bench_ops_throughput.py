"""Micro-benchmarks: per-operation cost of every data-plane component.

These are true multi-round pytest-benchmark measurements (unlike the
experiment benches, which time one full harness run). They back the
paper's overhead argument — Section 5.3 shows heap-based front-end
caches add no measurable cost against a 244 µs RTT; here the absolute
per-op costs are pinned so regressions are visible.
"""

from __future__ import annotations

import pytest

from repro.cluster.hashring import ConsistentHashRing
from repro.core.cache import CoTCache
from repro.core.spacesaving import SpaceSaving
from repro.engine import (
    PolicySpec,
    PolicyStreamRunner,
    Scale,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.policies.base import MISSING
from repro.policies.registry import make_policy
from repro.workloads.mixer import OperationMixer
from repro.workloads.scrambled import ScrambledZipfianGenerator
from repro.workloads.zipfian import ZipfianGenerator

KEYS = 10_000
OPS_PER_ROUND = 2_000
ENGINE_ACCESSES = 20_000


@pytest.fixture(scope="module")
def key_stream():
    generator = ZipfianGenerator(KEYS, theta=0.99, seed=42)
    return generator.keys_array(100_000)


@pytest.mark.parametrize("name", ["lru", "lfu", "arc", "lru2", "cot"])
def bench_policy_lookup_admit(benchmark, key_stream, name):
    """Steady-state cost of one lookup+admit access, via the fused path.

    Drives ``run_stream`` — the data-plane entry the experiment harnesses
    use — so the measurement includes each policy's fused fast path where
    one exists (CoT) and the generic lookup/admit composition elsewhere.
    """
    policy = make_policy(name, 512, tracker_capacity=2048)
    # Warm the policy so steady-state (mixed hit/miss) cost is measured.
    policy.run_stream(key_stream[:20_000])
    cursor = [20_000]

    def run():
        start = cursor[0] % (len(key_stream) - OPS_PER_ROUND)
        policy.run_stream(key_stream[start:start + OPS_PER_ROUND])
        cursor[0] += OPS_PER_ROUND

    benchmark(run)
    benchmark.extra_info["ops_per_round"] = OPS_PER_ROUND
    benchmark.extra_info["hit_rate"] = round(policy.stats.hit_rate, 4)


def bench_spacesaving_offer(benchmark, key_stream):
    sketch: SpaceSaving[int] = SpaceSaving(2048)
    cursor = [0]

    def run():
        start = cursor[0] % (len(key_stream) - OPS_PER_ROUND)
        for key in key_stream[start:start + OPS_PER_ROUND]:
            sketch.offer(key)
        cursor[0] += OPS_PER_ROUND

    benchmark(run)
    benchmark.extra_info["ops_per_round"] = OPS_PER_ROUND


def bench_hash_ring_lookup(benchmark, key_stream):
    ring = ConsistentHashRing([f"cache-{i}" for i in range(8)], virtual_nodes=2048)
    keys = [f"usertable:{k}" for k in key_stream[:OPS_PER_ROUND]]

    def run():
        for key in keys:
            ring.server_for(key)

    benchmark(run)
    benchmark.extra_info["ops_per_round"] = OPS_PER_ROUND


def bench_hash_ring_replica_lookup(benchmark, key_stream):
    """Replica-set resolution (hot-key tier): one bisect + table fetch.

    Pins the successor-table optimisation of
    ``ConsistentHashRing.lookup_replicas`` — the amortised cost must stay
    at primary-lookup levels (one bisect), not grow with the replica
    count the way the naive per-call ring walk would.
    """
    ring = ConsistentHashRing([f"cache-{i}" for i in range(8)], virtual_nodes=2048)
    keys = [f"usertable:{k}" for k in key_stream[:OPS_PER_ROUND]]
    ring.lookup_replicas(keys[0], 3)  # build the r=3 successor table once

    def run():
        for key in keys:
            ring.lookup_replicas(key, 3)

    benchmark(run)
    benchmark.extra_info["ops_per_round"] = OPS_PER_ROUND


def bench_zipfian_generation(benchmark):
    generator = ZipfianGenerator(1_000_000, theta=0.99, seed=1)

    def run():
        for _ in range(OPS_PER_ROUND):
            generator.next_key()

    benchmark(run)


def bench_request_mix_generation(benchmark):
    """Cost of materializing mixed request objects (the PR 5 slots target).

    Times ``OperationMixer.next_requests`` end to end — key draw, wire-key
    formatting and one slotted :class:`Request` allocation per operation —
    the allocation-heaviest loop of the sim and mixed-cluster drives.
    Before/after the ``__slots__`` sweep this is the line to compare.
    """
    generator = ZipfianGenerator(KEYS, theta=0.99, seed=7)
    mixer = OperationMixer(generator, seed=11)

    def run():
        mixer.next_requests(OPS_PER_ROUND)

    benchmark(run)
    benchmark.extra_info["ops_per_round"] = OPS_PER_ROUND


def bench_scrambled_zipfian_generation(benchmark):
    generator = ScrambledZipfianGenerator(1_000_000, seed=1)

    def run():
        for _ in range(OPS_PER_ROUND):
            generator.next_key()

    benchmark(run)


def bench_engine_policy_stream(benchmark):
    """Per-access cost of a whole engine-path run (spec → runner → bus).

    Each timed round executes a complete ``PolicyStreamRunner`` scenario —
    policy construction, generator seeding, the fused chunked drive and
    the telemetry snapshot — so the number is directly comparable to
    ``bench_policy_lookup_admit[cot]``: the gap between the two is the
    engine's total per-run overhead amortized over the stream.
    """
    spec = ScenarioSpec(
        scale=Scale.smoke().scaled(
            name="bench", key_space=KEYS, accesses=ENGINE_ACCESSES
        ),
        workload=WorkloadSpec(dist="zipf-0.99"),
        policy=PolicySpec(name="cot", cache_lines=512, tracker_lines=2048),
    )
    runner = PolicyStreamRunner()

    def run():
        runner.run(spec)

    benchmark(run)
    benchmark.extra_info["ops_per_round"] = ENGINE_ACCESSES


def bench_cot_resize_cycle(benchmark, key_stream):
    """Cost of a full double-then-halve resize at a realistic size."""
    cache = CoTCache(512, tracker_capacity=2048)
    for key in key_stream[:30_000]:
        if cache.lookup(key) is MISSING:
            cache.admit(key, key)

    def run():
        cache.set_sizes(1024, 4096)
        cache.set_sizes(512, 2048)

    benchmark(run)
