"""Benchmark + regeneration of Figure 6 (single-client end-to-end runtime).

Asserts the paper's two observations: (1) without a front-end cache the
skewed workloads are slower than uniform even with no queueing; (2) with
a small front-end cache, skewed workloads become *faster* than uniform —
the cache both removes the hot-shard slowdown and serves lookups locally.
"""

from __future__ import annotations

from repro.experiments import fig6_single_client


def _runtime(cell: str) -> float:
    return float(cell.split("±")[0])


def bench_fig6_single_client(benchmark, bench_scale, record_result):
    result = benchmark.pedantic(
        lambda: fig6_single_client.run(bench_scale, repetitions=2),
        rounds=1,
        iterations=1,
    )
    record_result(benchmark, result)

    rows = {row[0]: row for row in result.rows}
    uniform_idx = result.headers.index("uniform")
    z99_idx = result.headers.index("zipf-0.99")
    z12_idx = result.headers.index("zipf-1.2")

    # Observation 1: no-cache skew ordering holds with a single client.
    assert (
        _runtime(rows["none"][uniform_idx])
        < _runtime(rows["none"][z99_idx])
        < _runtime(rows["none"][z12_idx])
    )
    # Observation 2: with a front-end cache, skewed beats uniform.
    assert _runtime(rows["cot"][z12_idx]) < _runtime(rows["cot"][uniform_idx])
    assert _runtime(rows["cot"][z99_idx]) < _runtime(rows["cot"][uniform_idx])
