"""Benchmark + regeneration of Figure 4 (hit rate vs cache size).

One bench per skew panel (s = 0.90 / 0.99 / 1.2). Asserts the paper's
shape: CoT tracks the theoretical perfect cache (TPC), beats LRU/LFU/ARC/
LRU-2 at every size, and its edge narrows as skew grows.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig4_hit_rates


def _check_shape(result):
    cot = result.column("cot")
    tpc = result.column("tpc")
    for name in ("lru", "lfu", "arc", "lru2"):
        other = result.column(name)
        wins = sum(1 for c, o in zip(cot, other) if c >= o)
        assert wins >= len(cot) - 1, f"cot should dominate {name}"
    for c, t in zip(cot, tpc):
        assert c == pytest.approx(t, abs=8.0)


@pytest.mark.parametrize("theta", [0.90, 0.99, 1.2])
def bench_fig4_hit_rates(benchmark, bench_scale, record_result, theta):
    sizes = [2, 8, 32, 128]
    result = benchmark.pedantic(
        lambda: fig4_hit_rates.run(theta=theta, scale=bench_scale, sizes=sizes),
        rounds=1,
        iterations=1,
    )
    result.experiment_id = f"fig4-zipf-{theta:g}"
    record_result(benchmark, result)
    _check_shape(result)


def bench_fig4_cot_advantage_narrows_with_skew(benchmark, bench_scale, record_result):
    """The paper's cross-panel observation: CoT's margin over LRU shrinks
    as the workload gets more skewed."""

    def margins():
        sizes = [8, 32]
        per_theta = {}
        for theta in (0.90, 1.2):
            result = fig4_hit_rates.run(theta=theta, scale=bench_scale, sizes=sizes)
            cot = result.column("cot")
            lru = result.column("lru")
            per_theta[theta] = sum(c / max(l, 1e-9) for c, l in zip(cot, lru)) / len(
                sizes
            )
        return per_theta

    per_theta = benchmark.pedantic(margins, rounds=1, iterations=1)
    benchmark.extra_info["relative_margin"] = {
        str(k): round(v, 3) for k, v in per_theta.items()
    }
    assert per_theta[0.90] > per_theta[1.2]
